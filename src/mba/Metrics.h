//===- mba/Metrics.h - MBA complexity metrics -------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complexity metrics the paper's study correlates with solving time
/// (Section 3.1 and Table 1):
///
///  * **MBA type** — linear / poly / non-poly (see Classify.h).
///  * **Number of variables**.
///  * **MBA alternation** — the number of operator edges that connect an
///    arithmetic computation with a bitwise one; the paper's key finding is
///    that this metric dominates solving time (Figure 3).
///  * **MBA length** — length of the printed expression string.
///  * **Number of terms** — addends after flattening the toplevel +/- spine.
///  * **Coefficient magnitude** — the largest |constant| appearing.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_METRICS_H
#define MBA_MBA_METRICS_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "mba/Classify.h"

#include <cstdint>

namespace mba {

/// Complexity measurements of one expression.
struct ComplexityMetrics {
  MBAKind Kind = MBAKind::Linear;
  unsigned NumVariables = 0;
  uint64_t Alternation = 0;
  size_t Length = 0;
  uint64_t NumTerms = 0;
  uint64_t MaxCoefficient = 0; ///< max |signed value| over all constants
};

/// The "MBA alternation" count of \p E: the number of (parent, child)
/// operator edges whose operator classes differ (arithmetic vs bitwise),
/// counted over the expression *tree* (a shared subtree contributes once
/// per occurrence). Leaf children never contribute.
///
/// Example: in (x&y) + 2*z the '+' has a bitwise left child, so the
/// alternation is 1 — exactly the paper's Section 3.1 example.
uint64_t mbaAlternation(const Expr *E);

/// Number of top-level addends: the leaves of the +/- (and unary -) spine.
/// A single non-sum expression counts as one term.
uint64_t countTerms(const Expr *E);

/// Largest |signed constant| appearing anywhere in \p E (0 if none).
uint64_t maxCoefficient(const Context &Ctx, const Expr *E);

/// Computes all metrics of \p E in one call.
ComplexityMetrics measureComplexity(const Context &Ctx, const Expr *E);

} // namespace mba

#endif // MBA_MBA_METRICS_H
