//===- mba/Signature.h - MBA signature vectors ------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Signature vectors of linear MBA expressions (Definition 3 of the paper).
/// For a linear MBA E = sum_i a_i * e_i over t variables, the signature is
/// s = M v, where M is the truth-table matrix of the bitwise expressions and
/// v the coefficient vector. Theorem 1: two linear MBA expressions over the
/// same variables are equivalent on Z/2^w iff their signatures are equal —
/// the signature is a complete, canonical semantic summary.
///
/// This implementation computes s *without* decomposing E into terms: a
/// bitwise expression evaluated on a truth-table corner (every variable 0 or
/// all-ones) yields 0 or all-ones = -1, so row k of M v equals -E(corner_k).
/// One evaluation per row therefore recovers the exact signature, which also
/// works for any expression that is only *semantically* linear.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_SIGNATURE_H
#define MBA_MBA_SIGNATURE_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mba {

/// Signature vector of \p E over the ordered variable list \p Vars (the
/// variables of E sorted by name, or any superset): entry k is -E(corner_k)
/// masked to the width. The result has 2^|Vars| entries.
///
/// \pre E must be semantically linear in \p Vars (guaranteed by the Linear
/// classification, but also true for e.g. `~t` with t a temp variable).
std::vector<uint64_t> computeSignature(const Context &Ctx, const Expr *E,
                                       std::span<const Expr *const> Vars);

/// Reference implementation of computeSignature that evaluates one corner at
/// a time with the scalar compiled evaluator. The production path above runs
/// the corners 64 per block through the bitsliced evaluator
/// (ast/BitslicedEval.h); this version is kept as the baseline for
/// bench/micro_bitslice.cpp and for the tests pinning the two paths equal.
std::vector<uint64_t>
computeSignatureScalar(const Context &Ctx, const Expr *E,
                       std::span<const Expr *const> Vars);

/// Signature over E's own (name-sorted) variables; also returns that
/// variable list via \p VarsOut when non-null.
std::vector<uint64_t>
computeSignature(const Context &Ctx, const Expr *E,
                 std::vector<const Expr *> *VarsOut = nullptr);

/// Theorem 1 equivalence: decides E1 == E2 for *linear* MBA expressions by
/// comparing signatures over the union of their variables. Sound and
/// complete for (semantically) linear expressions; do not call on
/// non-linear ones.
bool linearMBAEquivalent(const Context &Ctx, const Expr *E1, const Expr *E2);

} // namespace mba

#endif // MBA_MBA_SIGNATURE_H
