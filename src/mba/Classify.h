//===- mba/Classify.h - Linear / poly / non-poly classification -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic classification of MBA expressions into the paper's three
/// categories (Figure 2):
///
///  * **Linear** (Definition 1): an integer-linear combination of pure
///    bitwise expressions, sum_i a_i * e_i(x1..xt).
///  * **Polynomial** (Definition 2): sum_i a_i * prod_j e_ij(x1..xt) —
///    products of bitwise expressions are allowed inside terms. Following
///    the paper, "poly MBA" elsewhere means *non-linear* polynomial.
///  * **NonPolynomial**: everything else, i.e. some bitwise operator has an
///    operand that itself computes arithmetic (e.g. (x+y)&z or ~(x-1)).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_CLASSIFY_H
#define MBA_MBA_CLASSIFY_H

#include "ast/Context.h"
#include "ast/Expr.h"

namespace mba {

/// The paper's MBA complexity categories. Linear implies Polynomial; the
/// classifier returns the most specific category.
enum class MBAKind : uint8_t {
  Linear,
  Polynomial,   ///< non-linear polynomial ("poly MBA" in the paper)
  NonPolynomial ///< not expressible under Definition 2
};

/// Printable name of a category.
const char *mbaKindName(MBAKind K);

/// True if \p E is a pure bitwise expression: variables and the constants
/// 0 / -1 (whose truth columns are uniform) combined with &, |, ^, ~ only.
bool isPureBitwise(const Context &Ctx, const Expr *E);

/// Classifies \p E into the most specific of the three categories.
MBAKind classifyMBA(const Context &Ctx, const Expr *E);

} // namespace mba

#endif // MBA_MBA_CLASSIFY_H
