//===- mba/Simplifier.cpp - The MBA-Solver simplification engine ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/Simplifier.h"

#include "analysis/AbstractInterp.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Printer.h"
#include "linalg/TruthTable.h"
#include "mba/BooleanMin.h"
#include "mba/Classify.h"
#include "mba/Metrics.h"
#include "mba/Signature.h"
#include "mba/SimplifyCache.h"
#include "poly/PolyExpr.h"
#include "support/QueryLog.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <functional>

using namespace mba;

namespace {

/// Folds every option that can change the simplifier's output into one
/// word, so differently-configured solvers sharing a SimplifyCache can
/// never alias each other's result-layer entries.
uint64_t optionsFingerprint(const SimplifyOptions &O) {
  uint64_t H = hashMix64(0x51312c1f1e5ULL);
  auto Add = [&H](uint64_t V) { H = hashCombine64(H, V); };
  Add((uint64_t)O.Basis);
  Add(O.AutoBasis);
  Add(O.MaxSignatureVars);
  Add(O.EnableCSE);
  Add(O.EnableFinalOpt);
  Add(O.EnableKnownBits);
  Add(O.EnableSaturation);
  Add(O.SaturationBudget.MaxIterations);
  Add(O.SaturationBudget.MaxENodes);
  Add(O.SaturationBudget.MaxMatchesPerRule);
  Add(O.MaxFinalOptVars);
  Add(O.MaxDepth);
  Add((bool)O.SynthFallback);
  return H;
}

} // namespace

MBASolver::MBASolver(Context &Ctx, SimplifyOptions Opts)
    : Ctx(Ctx), Opts(Opts), OptionsFp(optionsFingerprint(this->Opts)) {}

bool MBASolver::noting() const {
  return Opts.Trail || telemetry::metricsEnabled() || querylog::active();
}

void MBASolver::note(const char *Rule, const Expr *Before, const Expr *After,
                     uint64_t Ns) {
  if (Opts.Trail)
    Opts.Trail->record(Rule, Before, After);
  // Rule attribution counts actual fires — a pass that ran but returned
  // its input is stage time, not a rule application.
  if (Before == After || !*Rule)
    return;
  if (telemetry::metricsEnabled() || querylog::active())
    querylog::noteRule(Rule, 1, Ns, countDagNodes(Before),
                       countDagNodes(After));
}

namespace {

/// 16-hex-digit spelling of a fingerprint (JSON numbers cannot hold it).
std::string fingerprintHex(uint64_t Fp) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, Fp);
  return Buf;
}

} // namespace

const Expr *MBASolver::simplify(const Expr *E) {
  MBA_TRACE_SPAN("simplify");
  static telemetry::Counter &Calls = telemetry::counter("simplify.calls");
  static telemetry::Histogram &DurationNs =
      telemetry::histogram("simplify.duration_ns");
  Calls.add();
  Stopwatch Timer;
  size_t BytesBefore = Ctx.bytesUsed();

  // Flight recorder: one record per top-level simplify query. Purely
  // observational — nothing below branches on whether recording is on, so
  // logged and unlogged runs stay bit-identical (pinned by harness_test).
  querylog::QueryScope LogScope("simplify");
  size_t CacheHitsBefore = Stats.CacheHits;
  size_t CacheMissesBefore = Stats.CacheMisses;
  if (querylog::Record *QR = querylog::active()) {
    QR->num("width", Ctx.width());
    QR->num("nodes_in", countDagNodes(E));
    QR->num("alt_in", mbaAlternation(E));
    QR->str("fp_in", fingerprintHex(exprFingerprint(E)));
    uint64_t ClassifyStart = telemetry::nowNs();
    QR->str("class", mbaKindName(classifyMBA(Ctx, E)));
    QR->stage("classify", telemetry::nowNs() - ClassifyStart);
  }
  auto FinishRecord = [&](const Expr *Result, const char *ResultCache) {
    querylog::Record *QR = querylog::active();
    if (!QR)
      return;
    QR->str("result_cache", ResultCache);
    QR->num("nodes_out", countDagNodes(Result));
    QR->num("alt_out", mbaAlternation(Result));
    QR->str("fp_out", fingerprintHex(exprFingerprint(Result)));
    // Simplifier-side cache events during this query (result + linear +
    // basis layers share the counters; the early-return hit path makes
    // "hit" vs these numbers unambiguous).
    QR->num("cache_hits", Stats.CacheHits - CacheHitsBefore);
    QR->num("cache_misses", Stats.CacheMisses - CacheMissesBefore);
  };

  // Per-call state: temp numbering restarts at zero and may only avoid the
  // *input's* variable names, and the rewrite memo is scoped to this call.
  // Both make the output a function of the input expression alone — a
  // solver that processed other expressions first (a reused serial solver,
  // a thread-pool worker with its private memo) produces the same form a
  // fresh solver would, which is what lets the parallel study and the
  // shared caches promise bit-identical expressions, not just verdicts.
  // (Cross-call reuse isn't lost: the schedule-independent semantic caches
  // below replace what the cross-call memo used to provide.)
  NextTempId = 0;
  ReservedNames.clear();
  for (const Expr *V : collectVariables(E))
    ReservedNames.insert(V->varName());
  ResultMemo.clear();

  // Structural result layer of the shared cache: keyed on the input's
  // fingerprint (not its semantics — the alternation guard below makes the
  // output depend on the input's *form*, so semantic keying would break
  // bit-identity). Suspended while a trail or experimental rule is
  // attached: a hit would skip the steps they are meant to observe.
  SimplifyCache *SC = Opts.EnableCache && Opts.SharedCache && !Opts.Trail &&
                              !Opts.ExperimentalRule && !Opts.SynthFallback
                          ? Opts.SharedCache
                          : nullptr;
  uint64_t ResultKey = 0;
  if (SC) {
    ResultKey = hashCombine64(hashCombine64(hashMix64(Ctx.mask()), OptionsFp),
                              exprFingerprint(E));
    if (const Expr *Hit = SC->lookupResult(ResultKey, Ctx)) {
      ++Stats.CacheHits;
      double Elapsed = Timer.seconds();
      Stats.Seconds += Elapsed;
      Stats.ArenaBytesDelta += Ctx.bytesUsed() - BytesBefore;
      DurationNs.record((uint64_t)(Elapsed * 1e9));
      FinishRecord(Hit, "hit");
      return Hit;
    }
  }

  bool Noting = noting();
  const Expr *R = E;
  if (Opts.EnableKnownBits) {
    // Multi-domain constant folding (known bits + parity + intervals);
    // strictly stronger than the original known-bits-only pre-pass.
    querylog::StageTimer Stage("abstract-fold");
    uint64_t T0 = Noting ? telemetry::nowNs() : 0;
    R = foldAbstract(Ctx, R);
    note("abstract-fold", E, R, Noting ? telemetry::nowNs() - T0 : 0);
  }
  if (Opts.EnableSaturation) {
    // Equality saturation with the certified rule table; extraction picks
    // the smallest discovered form. pickBetter guards against extraction
    // trading alternation for size.
    querylog::StageTimer Stage("egraph-saturate");
    const Expr *Before = R;
    uint64_t T0 = Noting ? telemetry::nowNs() : 0;
    R = pickBetter(Prover(Ctx).saturateAndExtract(R, Opts.SaturationBudget),
                   R);
    note("egraph-saturate", Before, R, Noting ? telemetry::nowNs() - T0 : 0);
  }
  if (Opts.ExperimentalRule) {
    querylog::StageTimer Stage("experimental-rule");
    const Expr *Before = R;
    uint64_t T0 = Noting ? telemetry::nowNs() : 0;
    R = Opts.ExperimentalRule(Ctx, R);
    note("experimental-rule", Before, R, Noting ? telemetry::nowNs() - T0 : 0);
  }
  R = simplifyRec(R, 0);
  if (Opts.EnableFinalOpt) {
    querylog::StageTimer Stage("final-opt");
    const Expr *Before = R;
    uint64_t T0 = Noting ? telemetry::nowNs() : 0;
    R = finalOptimize(R);
    note("final-opt", Before, R, Noting ? telemetry::nowNs() - T0 : 0);
  }
  // Never return a form with more bitwise/arithmetic mixing than the
  // input. (Length may grow: the normalized expansion of a factored
  // polynomial is longer but canonical, which is what solvers need.)
  if (mbaAlternation(R) > mbaAlternation(E))
    R = E;

  if (SC)
    SC->insertResult(ResultKey, R);
  double Elapsed = Timer.seconds();
  Stats.Seconds += Elapsed;
  Stats.ArenaBytesDelta += Ctx.bytesUsed() - BytesBefore;
  DurationNs.record((uint64_t)(Elapsed * 1e9));
  FinishRecord(R, SC ? "miss" : "off");
  return R;
}

const Expr *MBASolver::simplifyRec(const Expr *E, unsigned Depth) {
  if (E->isLeaf())
    return E;
  if (Depth > Opts.MaxDepth)
    return E;
  auto It = ResultMemo.find(E);
  if (It != ResultMemo.end())
    return It->second;

  const Expr *R = E;
  const char *Rule = "";
  uint64_t NoteStart = noting() ? telemetry::nowNs() : 0;
  switch (classifyMBA(Ctx, E)) {
  case MBAKind::Linear: {
    std::vector<const Expr *> Vars = collectVariables(E);
    if (Vars.size() <= Opts.MaxSignatureVars) {
      R = simplifyLinear(E, Vars);
      Rule = "linear-signature";
    } else {
      // Too many variables for a whole-expression signature: the
      // polynomial path normalizes each bitwise atom over its own
      // (smaller) variable set instead.
      R = simplifyPoly(E, Depth);
      Rule = "poly-normalize";
    }
    break;
  }
  case MBAKind::Polynomial:
    R = simplifyPoly(E, Depth);
    Rule = "poly-normalize";
    break;
  case MBAKind::NonPolynomial:
    R = simplifyNonPoly(E, Depth);
    Rule = "nonpoly-abstraction";
    // Residue the abstraction path could not flatten is where the
    // enumerative synthesizer gets its shot. Its results arrive
    // checker-proved (see SimplifyOptions::SynthFallback), and pickBetter
    // keeps the replacement only when it actually improves the form.
    // The bank form is re-canonicalized before installation: the residue
    // was canonicalized over a basis that included its opaque temporaries,
    // so its linear part is *not* the canonical form over the real
    // variables — without this pass, a synthesized side and an untouched
    // side of the same function would meet the equivalence checker as two
    // structurally different (and SAT-hard to relate) canonical forms
    // instead of strash-collapsing.
    if (Opts.SynthFallback && mbaAlternation(R) > 0) {
      if (const Expr *S = Opts.SynthFallback(Ctx, R)) {
        if (Depth < Opts.MaxDepth)
          S = simplifyRec(S, Depth + 1);
        const Expr *P = pickBetter(S, R);
        bool Installed = P != R;
        if (Installed) {
          R = P;
          Rule = "synth-fallback";
        }
        // Attribution: the candidate arrived checker-proved; record
        // whether pickBetter installed it or judged it no improvement.
        if (noting())
          querylog::noteRuleOutcome("synth-fallback", Installed);
      }
    }
    break;
  }

  if (mbaAlternation(R) > mbaAlternation(E))
    R = E;
  note(Rule, E, R, NoteStart ? telemetry::nowNs() - NoteStart : 0);
  ResultMemo.emplace(E, R);
  return R;
}

const Expr *MBASolver::simplifyLinear(const Expr *E,
                                      const std::vector<const Expr *> &Vars) {
  if (Vars.empty())
    // No variables: a constant expression; evaluate it.
    return Ctx.getConst(evaluate(Ctx, E, std::span<const uint64_t>()));
  ++Stats.LinearRuns;
  MBA_TRACE_SPAN("simplify.linear");
  querylog::StageTimer Stage("linear-signature");
  static telemetry::Counter &Runs = telemetry::counter("simplify.linear_runs");
  Runs.add();
  std::vector<uint64_t> Sig = computeSignature(Ctx, E, Vars);
  Stats.TransientBytes += Sig.size() * sizeof(uint64_t);

  // Semantic layer of the shared cache: by Theorem 1 the signature (with
  // the variable names and basis options) fully determines the normalized
  // rebuild, so the cached value is a pure function of the key and the hit
  // path is bit-identical to the computing path.
  SimplifyCache *SC = Opts.EnableCache ? Opts.SharedCache : nullptr;
  uint64_t Key = 0;
  if (SC) {
    Key = linearCacheKey(Sig, Vars);
    if (const Expr *Hit = SC->lookupLinear(Key, Ctx)) {
      ++Stats.CacheHits;
      return Hit;
    }
  }
  LinearCombo Combo = normalizedCombo(Sig, Vars, /*AllowAuto=*/true);
  const Expr *R = buildLinearCombination(Ctx, Combo.Terms, Combo.Constant);
  if (SC)
    SC->insertLinear(Key, R);
  return R;
}

uint64_t MBASolver::basisCacheKey(const std::vector<uint64_t> &Sig,
                                  const std::vector<const Expr *> &Vars,
                                  bool Auto) const {
  // Mode tag 0/1 = fixed conjunction/disjunction basis, 2 = auto selection.
  uint64_t H = hashMix64(Ctx.mask());
  H = hashCombine64(H, Auto ? 2 : (uint64_t)Opts.Basis);
  H = hashCombine64(H, Vars.size());
  for (uint64_t S : Sig)
    H = hashCombine64(H, S);
  // A fixed-basis solution references variables only by subset index, so
  // it is shareable across variable sets of the same arity. AutoBasis
  // breaks print-length ties with the rebuilt expression, which depends on
  // the names — they join the key so the pick stays a pure function of it.
  if (Auto)
    for (const Expr *V : Vars)
      H = hashCombine64(H, hashString64(V->varName()));
  return H;
}

uint64_t MBASolver::linearCacheKey(const std::vector<uint64_t> &Sig,
                                   const std::vector<const Expr *> &Vars) const {
  // The linear layer stores rebuilt expressions, which always reference
  // the variables by name — extend the basis key (domain-separated) with
  // the full name tuple.
  uint64_t H = basisCacheKey(Sig, Vars, Opts.AutoBasis);
  H = hashCombine64(H, 0x11ea7ULL);
  for (const Expr *V : Vars)
    H = hashCombine64(H, hashString64(V->varName()));
  return H;
}

LinearCombo
MBASolver::normalizedCombo(const std::vector<uint64_t> &Sig,
                           const std::vector<const Expr *> &Vars,
                           bool AllowAuto) {
  bool Auto = Opts.AutoBasis && AllowAuto;
  uint64_t Mask = Ctx.mask();
  unsigned T = (unsigned)Vars.size();

  auto Solve = [&]() -> BasisSolution {
    if (!Auto)
      return solveBasisRaw(Opts.Basis, Sig, T, Mask);
    // Input-dependent basis selection (Section 7): keep the combination
    // with fewer terms; break ties toward the shorter rebuilt expression.
    BasisSolution Conj = solveBasisRaw(BasisKind::Conjunction, Sig, T, Mask);
    BasisSolution Disj = solveBasisRaw(BasisKind::Disjunction, Sig, T, Mask);
    if (Conj.Terms.size() != Disj.Terms.size())
      return Conj.Terms.size() < Disj.Terms.size() ? Conj : Disj;
    LinearCombo ConjCombo = comboFromSolution(Ctx, Conj, Vars);
    LinearCombo DisjCombo = comboFromSolution(Ctx, Disj, Vars);
    size_t LenC =
        printExpr(Ctx, buildLinearCombination(Ctx, ConjCombo.Terms,
                                              ConjCombo.Constant))
            .size();
    size_t LenD =
        printExpr(Ctx, buildLinearCombination(Ctx, DisjCombo.Terms,
                                              DisjCombo.Constant))
            .size();
    return LenD < LenC ? Disj : Conj;
  };

  if (!Opts.EnableCache)
    return comboFromSolution(Ctx, Solve(), Vars);
  uint64_t Key = basisCacheKey(Sig, Vars, Auto);
  BasisSolution Solution;
  if (basisCache().lookup(Key, Solution)) {
    ++Stats.CacheHits;
  } else {
    ++Stats.CacheMisses;
    Solution = Solve();
    basisCache().insert(Key, Solution);
  }
  return comboFromSolution(Ctx, Solution, Vars);
}

const Expr *MBASolver::simplifyPoly(const Expr *E, unsigned Depth) {
  ++Stats.PolyRuns;
  MBA_TRACE_SPAN("simplify.poly");
  querylog::StageTimer Stage("poly-normalize");
  static telemetry::Counter &Runs = telemetry::counter("simplify.poly_runs");
  Runs.add();
  AtomMap Atoms;
  uint64_t Mask = Ctx.mask();

  // Section 4.4: substitute every bitwise sub-expression by its normalized
  // linear combination over basis terms, then expand and collect in the
  // polynomial ring.
  auto AtomPoly = [&](const Expr *N) -> std::optional<Polynomial> {
    if (N->isVar())
      return Polynomial::atom(Atoms.getOrCreate(N), Mask);
    if (!isBitwiseKind(N->kind()))
      return std::nullopt; // arithmetic and constants: converter recurses
    if (!isPureBitwise(Ctx, N))
      // Impure bitwise (only reachable from the non-poly path): opaque.
      return Polynomial::atom(Atoms.getOrCreate(N), Mask);
    std::vector<const Expr *> Vars = collectVariables(N);
    if (Vars.empty())
      return Polynomial::constant(
          evaluate(Ctx, N, std::span<const uint64_t>()), Mask);
    if (Vars.size() > Opts.MaxSignatureVars)
      return Polynomial::atom(Atoms.getOrCreate(N), Mask);
    std::vector<uint64_t> Sig = computeSignature(Ctx, N, Vars);
    Stats.TransientBytes += Sig.size() * sizeof(uint64_t);
    LinearCombo Combo = normalizedCombo(Sig, Vars, /*AllowAuto=*/false);
    Polynomial P = Polynomial::constant(Combo.Constant, Mask);
    for (auto &[Coeff, Term] : Combo.Terms)
      P.addTerm(Monomial::atom(Atoms.getOrCreate(Term)), Coeff);
    return P;
  };

  std::optional<Polynomial> P = exprToPolynomialGeneral(Ctx, E, AtomPoly);
  if (!P)
    // Expansion exceeded the term cap: fall back to simplifying operands.
    return rebuildWithSimplifiedChildren(E, Depth);
  // Rough per-term footprint of the map-based polynomial representation.
  Stats.TransientBytes += P->numTerms() * 64;
  return polynomialToExpr(Ctx, *P, Atoms);
}

const Expr *MBASolver::simplifyNonPoly(const Expr *E, unsigned Depth) {
  ++Stats.NonPolyRuns;
  MBA_TRACE_SPAN("simplify.nonpoly");
  querylog::StageTimer Stage("nonpoly-abstraction");
  static telemetry::Counter &Runs =
      telemetry::counter("simplify.nonpoly_runs");
  Runs.add();

  // Abstract every arithmetic sub-expression that sits directly under a
  // bitwise operator as a fresh temporary variable, recursively simplifying
  // it first. Equal (post-simplification) sub-expressions share one
  // temporary — this *is* the paper's common-sub-expression optimization:
  //   ((x&~y - ~x&y)|z) + ((x&~y - ~x&y)&z)
  //     -> (t|z) + (t&z) with t = x - y  ->  t + z  ->  x - y + z
  std::unordered_map<const Expr *, const Expr *> TempFor;   // subexpr -> temp
  std::vector<const Expr *> TempOrder; // TempFor keys in creation order
  std::unordered_map<const Expr *, const Expr *> BackSubst; // temp -> subexpr
  bool AbstractionFailed = false;

  std::unordered_map<const Expr *, const Expr *> Memo;
  std::function<const Expr *(const Expr *)> Abstract =
      [&](const Expr *N) -> const Expr * {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    const Expr *R;
    if (N->isLeaf()) {
      R = N;
    } else if (isBitwiseKind(N->kind())) {
      auto DoOperand = [&](const Expr *O) -> const Expr * {
        if (isPureBitwise(Ctx, O))
          return O;
        if (isBitwiseKind(O->kind()))
          return Abstract(O); // impure bitwise: abstract deeper inside
        // Note that a plain constant mask (e.g. the 3 in x & 3) is
        // abstracted like any arithmetic operand: the derived identity
        // holds for every value of the temporary, in particular for the
        // constant. Generality is lost (no constant-specific reasoning)
        // but soundness is not.
        const Expr *S = simplifyRec(O, Depth);
        if (isPureBitwise(Ctx, S))
          return S; // simplification removed the arithmetic
        // A linear operand whose signature is 0/1-valued *is* a bitwise
        // function (Theorem 1 makes the corner agreement total): rewrite
        // it as one instead of abstracting — e.g. -x-1 under & becomes
        // ~x, letting the surrounding bitwise context normalize fully.
        if (const Expr *Bitwise = recognizeBitwise(S))
          return Bitwise;
        if (!Opts.EnableCSE) {
          AbstractionFailed = true;
          return S;
        }
        auto [TIt, Inserted] = TempFor.emplace(S, nullptr);
        if (Inserted) {
          // Complement sharing: when S == ~S' for an already-abstracted
          // S' (e.g. -x-y-1 alongside x+y), reuse ~t' instead of burning
          // an unrelated temporary — the relation survives into the
          // signature solve. Theorem 1 decides the equality exactly for
          // (semantically) linear operands.
          if (classifyMBA(Ctx, S) == MBAKind::Linear &&
              collectVariables(S).size() <= Opts.MaxSignatureVars) {
            // Walk candidates in creation order, not map order: when S is
            // the complement of several previous operands the first one
            // must win deterministically, or the rebuilt form would vary
            // run to run.
            for (const Expr *Prev : TempOrder) {
              const Expr *Temp = TempFor.at(Prev);
              if (classifyMBA(Ctx, Prev) != MBAKind::Linear)
                continue;
              if (collectVariables(Prev).size() > Opts.MaxSignatureVars)
                continue;
              if (linearMBAEquivalent(Ctx, S, Ctx.getNot(Prev))) {
                const Expr *Shared = Ctx.getNot(Temp);
                TempFor.erase(TIt);
                return Shared;
              }
            }
          }
          const Expr *T = freshTempVar();
          TIt->second = T;
          TempOrder.push_back(S);
          BackSubst.emplace(T, S);
        }
        return TIt->second;
      };
      if (N->isUnary())
        R = Ctx.rebuild(N, DoOperand(N->operand()), nullptr);
      else
        R = Ctx.rebuild(N, DoOperand(N->lhs()), DoOperand(N->rhs()));
    } else {
      // Arithmetic spine: descend structurally.
      if (N->isUnary())
        R = Ctx.rebuild(N, Abstract(N->operand()), nullptr);
      else
        R = Ctx.rebuild(N, Abstract(N->lhs()), Abstract(N->rhs()));
    }
    Memo.emplace(N, R);
    return R;
  };

  const Expr *EAbs = Abstract(E);
  if (AbstractionFailed)
    return arithReduceOpaque(rebuildWithSimplifiedChildren(E, Depth));

  // The abstraction is linear or polynomial unless constants appear as
  // direct bitwise operands (x & 3 style), which stay non-poly.
  const Expr *RAbs = EAbs;
  switch (classifyMBA(Ctx, EAbs)) {
  case MBAKind::Linear: {
    std::vector<const Expr *> Vars = collectVariables(EAbs);
    RAbs = Vars.size() <= Opts.MaxSignatureVars ? simplifyLinear(EAbs, Vars)
                                                : simplifyPoly(EAbs, Depth);
    break;
  }
  case MBAKind::Polynomial:
    RAbs = simplifyPoly(EAbs, Depth);
    break;
  case MBAKind::NonPolynomial:
    RAbs = arithReduceOpaque(EAbs);
    break;
  }

  const Expr *R =
      BackSubst.empty() ? RAbs : substitute(Ctx, RAbs, BackSubst);
  R = arithReduceOpaque(R);

  // Substitution may expose further structure — a simpler class (the
  // paper's example collapses to the linear x - y + z) or another round of
  // abstraction (e.g. a remaining -z under &). Iterate while progress is
  // made, bounded by the depth budget.
  if (R != E && Depth < Opts.MaxDepth)
    R = simplifyRec(R, Depth + 1);
  return R;
}

const Expr *MBASolver::recognizeBitwise(const Expr *E) {
  if (classifyMBA(Ctx, E) != MBAKind::Linear)
    return nullptr;
  std::vector<const Expr *> Vars = collectVariables(E);
  if (Vars.empty() || Vars.size() > Opts.MaxSignatureVars)
    return nullptr;
  std::vector<uint64_t> Sig = computeSignature(Ctx, E, Vars);
  for (uint64_t S : Sig)
    if (S > 1)
      return nullptr;

  unsigned T = (unsigned)Vars.size();
  unsigned Rows = 1u << T;
  if (T <= MaxBooleanMinVars) {
    uint32_t Truth = 0;
    for (unsigned Row = 0; Row != Rows; ++Row)
      if (Sig[Row])
        Truth |= 1u << Row;
    return synthesizeBitwise(Ctx, Vars, Truth);
  }
  // More variables: disjunctive normal form over the true rows (rarely
  // reached and possibly large, but always pure bitwise and exact).
  bool AllTrue = true;
  for (uint64_t S : Sig)
    AllTrue &= S == 1;
  if (AllTrue)
    return Ctx.getAllOnes();
  const Expr *Dnf = nullptr;
  for (unsigned Row = 0; Row != Rows; ++Row) {
    if (!Sig[Row])
      continue;
    const Expr *Minterm = nullptr;
    for (unsigned I = 0; I != T; ++I) {
      const Expr *L = truthBit(Row, I, T) ? Vars[I] : Ctx.getNot(Vars[I]);
      Minterm = Minterm ? Ctx.getAnd(Minterm, L) : L;
    }
    Dnf = Dnf ? Ctx.getOr(Dnf, Minterm) : Minterm;
  }
  return Dnf ? Dnf : Ctx.getZero();
}

const Expr *MBASolver::rebuildWithSimplifiedChildren(const Expr *E,
                                                     unsigned Depth) {
  if (E->isLeaf())
    return E;
  if (E->isUnary())
    return Ctx.rebuild(E, simplifyRec(E->operand(), Depth), nullptr);
  return Ctx.rebuild(E, simplifyRec(E->lhs(), Depth),
                     simplifyRec(E->rhs(), Depth));
}

const Expr *MBASolver::arithReduceOpaque(const Expr *E) {
  AtomMap Atoms;
  std::optional<Polynomial> P =
      exprToPolynomial(Ctx, E, Atoms, [](const Expr *N) {
        return N->isVar() || isBitwiseKind(N->kind());
      });
  if (!P)
    return E;
  return polynomialToExpr(Ctx, *P, Atoms);
}

const Expr *MBASolver::finalOptimize(const Expr *E) {
  if (E->isConst())
    return E;
  MBA_TRACE_SPAN("simplify.finalopt");
  if (classifyMBA(Ctx, E) != MBAKind::Linear)
    return E;
  std::vector<const Expr *> Vars = collectVariables(E);
  if (Vars.empty())
    return Ctx.getConst(evaluate(Ctx, E, std::span<const uint64_t>()));
  unsigned T = (unsigned)Vars.size();
  if (T > Opts.MaxFinalOptVars || T > MaxBooleanMinVars)
    return E;

  uint64_t Mask = Ctx.mask();
  unsigned Rows = 1u << T;
  std::vector<uint64_t> Sig = computeSignature(Ctx, E, Vars);

  // Uniform signature: the expression is a constant.
  bool Uniform = true;
  for (unsigned K = 1; K != Rows; ++K)
    Uniform &= Sig[K] == Sig[0];
  if (Uniform)
    return pickBetter(Ctx.getConst((0 - Sig[0]) & Mask), E);

  // Section 4.5 final step: search for a representation a * f(vars) + c
  // with f a single bitwise function; e.g. sig(x + y - 2*(x&y)) matches
  // f = XOR with a = 1, c = 0.
  const Expr *Best = E;
  for (uint32_t F = 1; F + 1 < (1u << Rows); ++F) {
    uint64_t OffValue = 0, OnValue = 0;
    bool HaveOff = false, HaveOn = false, Consistent = true;
    for (unsigned K = 0; K != Rows && Consistent; ++K) {
      if (F >> K & 1) {
        if (!HaveOn) {
          OnValue = Sig[K];
          HaveOn = true;
        } else {
          Consistent = OnValue == Sig[K];
        }
      } else {
        if (!HaveOff) {
          OffValue = Sig[K];
          HaveOff = true;
        } else {
          Consistent = OffValue == Sig[K];
        }
      }
    }
    if (!Consistent)
      continue;
    uint64_t A = (OnValue - OffValue) & Mask;
    if (!A)
      continue; // degenerate: uniform case already handled
    const Expr *FExpr = synthesizeBitwise(Ctx, Vars, F);
    const Expr *Candidate =
        buildLinearCombination(Ctx, {{A, FExpr}}, (0 - OffValue) & Mask);
    Best = pickBetter(Best, Candidate);
  }
  return Best;
}

const Expr *MBASolver::pickBetter(const Expr *A, const Expr *B) const {
  if (A == B)
    return A;
  uint64_t AltA = mbaAlternation(A), AltB = mbaAlternation(B);
  if (AltA != AltB)
    return AltA < AltB ? A : B;
  size_t LenA = printExpr(Ctx, A).size(), LenB = printExpr(Ctx, B).size();
  if (LenA != LenB)
    return LenA < LenB ? A : B;
  size_t NodesA = countDagNodes(A), NodesB = countDagNodes(B);
  if (NodesA != NodesB)
    return NodesA < NodesB ? A : B;
  return A;
}

const Expr *MBASolver::freshTempVar() {
  // Zero-padded so lexicographic name order equals creation order: the
  // canonical variable sort (collectVariables) would otherwise place _t10
  // before _t9 and reshuffle terms depending on how many temps a call
  // needed. Collisions are checked against the input's variables only —
  // probing the whole context (hasVar) would tie the numbering to which
  // expressions the context happened to see earlier.
  for (;;) {
    char Name[16];
    std::snprintf(Name, sizeof(Name), "_t%04u", NextTempId++);
    if (!ReservedNames.count(Name))
      return Ctx.getVar(Name);
  }
}
