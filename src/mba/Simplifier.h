//===- mba/Simplifier.h - The MBA-Solver simplification engine -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution (Algorithm 1): a semantics-preserving
/// transformation that reduces the MBA alternation of mixed
/// bitwise-arithmetic expressions so that SMT solvers can process them.
///
/// Pipeline per expression:
///  * **Linear MBA** — compute the signature vector, express it in the
///    normalized basis (lookup table first, ring solve on miss), rebuild.
///  * **Polynomial MBA** — substitute every bitwise sub-expression by its
///    normalized linear form over conjunction terms (Section 4.4), expand
///    in the polynomial ring, and collect/cancel.
///  * **Non-polynomial MBA** — recursively simplify the arithmetic
///    sub-expressions under bitwise operators, abstract them as fresh
///    temporary variables (the common-sub-expression optimization of
///    Section 4.5 falls out: equal sub-expressions share one temporary),
///    simplify the now linear/polynomial abstraction, substitute back, and
///    arithmetically reduce.
///  * **Final-step optimization** — try to replace the result by
///    `a * f(x..) + c` for a single bitwise function f of up to three
///    variables, e.g. x + y - 2*(x&y) ==> x ^ y.
///
/// Every step is an exact identity on Z/2^w: the simplifier cannot produce
/// false positives or negatives (unlike pattern matching or synthesis; see
/// the peer-tool comparison in Table 7).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_SIMPLIFIER_H
#define MBA_MBA_SIMPLIFIER_H

#include "analysis/Audit.h"
#include "analysis/Prover.h"
#include "ast/Context.h"
#include "ast/Expr.h"
#include "mba/Basis.h"

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace mba {

/// Tuning knobs of the simplifier.
struct SimplifyOptions {
  /// Normalized basis to express signatures in (Section 7 ablation).
  BasisKind Basis = BasisKind::Conjunction;

  /// Section 7 "future work": pick the basis per signature — solve in both
  /// the conjunction and disjunction bases and keep the more compact
  /// combination. Overrides Basis when enabled.
  bool AutoBasis = false;

  /// Maximum variable count for whole-expression signature computation
  /// (the signature has 2^t entries). Beyond this, linear expressions take
  /// the polynomial path, which normalizes atoms over their own variables.
  unsigned MaxSignatureVars = 10;

  /// Abstract arithmetic sub-expressions under bitwise operators as
  /// temporary variables (Section 4.5 common-sub-expression optimization).
  /// Disabling reproduces the paper's weaker behaviour on non-poly inputs.
  bool EnableCSE = true;

  /// Apply the final-step single-bitwise-function optimization.
  bool EnableFinalOpt = true;

  /// Run the abstract-domain folding pre-pass (known bits + parity +
  /// unsigned intervals; see analysis/AbstractInterp.h). Covers
  /// masked-constant cases the signature machinery cannot see, e.g.
  /// (x*2) & 1 == 0 or (x+x) & 1 == 0.
  bool EnableKnownBits = true;

  /// Run the e-graph equality-saturation pre-pass (analysis/Prover.h):
  /// saturate with the certified rewrite-rule table and extract the
  /// smallest equivalent form before the signature pipeline. Off by
  /// default — the signature machinery subsumes it on the paper corpus —
  /// but it pays off on rule-shaped inputs (Table 5 compositions) and
  /// every extracted form is certified-sound, so enabling it can never
  /// change semantics.
  bool EnableSaturation = false;

  /// Budget for the saturation pre-pass when EnableSaturation is set.
  ProveBudget SaturationBudget;

  /// Opt-in rewrite audit trail: when set, every top-level rewrite step
  /// (rule id, before/after nodes) is recorded here; replay it with
  /// auditTrail() (analysis/Audit.h) to cross-check the run. The trail is
  /// never cleared by the simplifier and must outlive it.
  RewriteTrail *Trail = nullptr;

  /// Extension point for custom rewrite rules, applied to the whole
  /// expression after the folding pre-pass. Recorded in the audit trail as
  /// rule "experimental-rule", so unsound candidate rules are caught by the
  /// auditor before they can corrupt results. Must return a valid
  /// expression in the same context (possibly its argument).
  std::function<const Expr *(Context &, const Expr *)> ExperimentalRule;

  /// Memoize signature -> normalized combination (the look-up table of
  /// Section 4.5).
  bool EnableCache = true;

  /// Maximum variable count for the final-step optimization (function
  /// enumeration is exponential in 2^t).
  unsigned MaxFinalOptVars = 3;

  /// Recursion budget for re-simplification of substituted results.
  unsigned MaxDepth = 16;
};

/// Cumulative statistics across simplify() calls.
struct SimplifyStats {
  double Seconds = 0;
  size_t ArenaBytesDelta = 0; ///< context arena growth during simplify()
  /// Estimated transient working-set bytes (signature vectors, polynomial
  /// term maps, lookup-table entries). The arena only holds expression
  /// nodes, so this is the dominant memory term for Table 8.
  size_t TransientBytes = 0;
  size_t CacheHits = 0;
  size_t CacheMisses = 0;
  unsigned LinearRuns = 0;  ///< linear-path simplifications
  unsigned PolyRuns = 0;    ///< polynomial-path simplifications
  unsigned NonPolyRuns = 0; ///< non-polynomial-path simplifications
};

/// The MBA-Solver simplification engine. Stateful only through the lookup
/// cache and statistics; simplify() may be called any number of times.
class MBASolver {
public:
  explicit MBASolver(Context &Ctx, SimplifyOptions Opts = SimplifyOptions());

  /// Simplifies \p E to an equivalent expression with lower (usually zero
  /// or near-zero) MBA alternation. Always returns a valid expression; when
  /// no reduction is found the input is returned unchanged.
  const Expr *simplify(const Expr *E);

  const SimplifyStats &stats() const { return Stats; }
  void resetStats() { Stats = SimplifyStats(); }

  const SimplifyOptions &options() const { return Opts; }

private:
  const Expr *simplifyRec(const Expr *E, unsigned Depth);
  const Expr *simplifyLinear(const Expr *E,
                             const std::vector<const Expr *> &Vars);
  const Expr *simplifyPoly(const Expr *E, unsigned Depth);
  const Expr *simplifyNonPoly(const Expr *E, unsigned Depth);
  const Expr *rebuildWithSimplifiedChildren(const Expr *E, unsigned Depth);

  /// If \p E is a linear expression whose signature is 0/1-valued — i.e.
  /// semantically a pure bitwise function (e.g. -x-1 == ~x) — returns that
  /// bitwise form; otherwise nullptr.
  const Expr *recognizeBitwise(const Expr *E);
  const Expr *arithReduceOpaque(const Expr *E);
  const Expr *finalOptimize(const Expr *E);

  /// Looks up / computes the normalized combination of a signature.
  /// \p AllowAuto permits per-input basis selection (AutoBasis option);
  /// the polynomial path passes false — its atoms must all normalize in
  /// one coherent basis or cross-atom cancellation breaks.
  LinearCombo normalizedCombo(const std::vector<uint64_t> &Sig,
                              const std::vector<const Expr *> &Vars,
                              bool AllowAuto);

  /// Returns the preferred of two equivalent forms (lower alternation,
  /// then shorter, then fewer DAG nodes).
  const Expr *pickBetter(const Expr *A, const Expr *B) const;

  /// A fresh variable not used anywhere in the context yet.
  const Expr *freshTempVar();

  /// Records a rewrite step into the opt-in audit trail (no-op when
  /// auditing is off or the step is an identity).
  void note(const char *Rule, const Expr *Before, const Expr *After) {
    if (Opts.Trail)
      Opts.Trail->record(Rule, Before, After);
  }

  Context &Ctx;
  SimplifyOptions Opts;
  SimplifyStats Stats;

  /// Lookup-table key (Section 4.5): (variable tuple, signature, auto-basis
  /// flag). The hash is computed once at construction — a probe then costs
  /// one table lookup instead of the lexicographic walk over the
  /// 2^t-entry signature that the previous ordered-map key paid, and
  /// equality checks the full contents so hash collisions stay correct.
  struct SigKey {
    std::vector<const Expr *> Vars;
    std::vector<uint64_t> Sig;
    bool AutoBasis;
    size_t Hash;

    SigKey(std::vector<const Expr *> Vars, std::vector<uint64_t> Sig,
           bool AutoBasis)
        : Vars(std::move(Vars)), Sig(std::move(Sig)), AutoBasis(AutoBasis) {
      uint64_t H = AutoBasis ? 0x9e3779b97f4a7c15ULL : 0;
      for (const Expr *V : this->Vars)
        H = hashCombine(H, (uint64_t)(uintptr_t)V);
      for (uint64_t S : this->Sig)
        H = hashCombine(H, S);
      Hash = (size_t)H;
    }

    static uint64_t hashCombine(uint64_t H, uint64_t V) {
      return H ^ (V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2));
    }

    bool operator==(const SigKey &O) const {
      return Hash == O.Hash && AutoBasis == O.AutoBasis && Vars == O.Vars &&
             Sig == O.Sig;
    }
  };

  struct SigKeyHash {
    size_t operator()(const SigKey &K) const { return K.Hash; }
  };

  /// Lookup table (Section 4.5): SigKey -> combination.
  std::unordered_map<SigKey, LinearCombo, SigKeyHash> Cache;

  /// Memo of completed top-level rewrites, keyed on input node.
  std::unordered_map<const Expr *, const Expr *> ResultMemo;

  unsigned NextTempId = 0;
};

} // namespace mba

#endif // MBA_MBA_SIMPLIFIER_H
