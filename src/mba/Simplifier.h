//===- mba/Simplifier.h - The MBA-Solver simplification engine -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution (Algorithm 1): a semantics-preserving
/// transformation that reduces the MBA alternation of mixed
/// bitwise-arithmetic expressions so that SMT solvers can process them.
///
/// Pipeline per expression:
///  * **Linear MBA** — compute the signature vector, express it in the
///    normalized basis (lookup table first, ring solve on miss), rebuild.
///  * **Polynomial MBA** — substitute every bitwise sub-expression by its
///    normalized linear form over conjunction terms (Section 4.4), expand
///    in the polynomial ring, and collect/cancel.
///  * **Non-polynomial MBA** — recursively simplify the arithmetic
///    sub-expressions under bitwise operators, abstract them as fresh
///    temporary variables (the common-sub-expression optimization of
///    Section 4.5 falls out: equal sub-expressions share one temporary),
///    simplify the now linear/polynomial abstraction, substitute back, and
///    arithmetically reduce.
///  * **Final-step optimization** — try to replace the result by
///    `a * f(x..) + c` for a single bitwise function f of up to three
///    variables, e.g. x + y - 2*(x&y) ==> x ^ y.
///
/// Every step is an exact identity on Z/2^w: the simplifier cannot produce
/// false positives or negatives (unlike pattern matching or synthesis; see
/// the peer-tool comparison in Table 7).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_SIMPLIFIER_H
#define MBA_MBA_SIMPLIFIER_H

#include "analysis/Audit.h"
#include "analysis/Prover.h"
#include "ast/Context.h"
#include "ast/Expr.h"
#include "mba/Basis.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mba {

class SimplifyCache;

/// Tuning knobs of the simplifier.
struct SimplifyOptions {
  /// Normalized basis to express signatures in (Section 7 ablation).
  BasisKind Basis = BasisKind::Conjunction;

  /// Section 7 "future work": pick the basis per signature — solve in both
  /// the conjunction and disjunction bases and keep the more compact
  /// combination. Overrides Basis when enabled.
  bool AutoBasis = false;

  /// Maximum variable count for whole-expression signature computation
  /// (the signature has 2^t entries). Beyond this, linear expressions take
  /// the polynomial path, which normalizes atoms over their own variables.
  unsigned MaxSignatureVars = 10;

  /// Abstract arithmetic sub-expressions under bitwise operators as
  /// temporary variables (Section 4.5 common-sub-expression optimization).
  /// Disabling reproduces the paper's weaker behaviour on non-poly inputs.
  bool EnableCSE = true;

  /// Apply the final-step single-bitwise-function optimization.
  bool EnableFinalOpt = true;

  /// Run the abstract-domain folding pre-pass (known bits + parity +
  /// unsigned intervals; see analysis/AbstractInterp.h). Covers
  /// masked-constant cases the signature machinery cannot see, e.g.
  /// (x*2) & 1 == 0 or (x+x) & 1 == 0.
  bool EnableKnownBits = true;

  /// Run the e-graph equality-saturation pre-pass (analysis/Prover.h):
  /// saturate with the certified rewrite-rule table and extract the
  /// smallest equivalent form before the signature pipeline. Off by
  /// default — the signature machinery subsumes it on the paper corpus —
  /// but it pays off on rule-shaped inputs (Table 5 compositions) and
  /// every extracted form is certified-sound, so enabling it can never
  /// change semantics.
  bool EnableSaturation = false;

  /// Budget for the saturation pre-pass when EnableSaturation is set.
  ProveBudget SaturationBudget;

  /// Opt-in rewrite audit trail: when set, every top-level rewrite step
  /// (rule id, before/after nodes) is recorded here; replay it with
  /// auditTrail() (analysis/Audit.h) to cross-check the run. The trail is
  /// never cleared by the simplifier and must outlive it.
  RewriteTrail *Trail = nullptr;

  /// Extension point for custom rewrite rules, applied to the whole
  /// expression after the folding pre-pass. Recorded in the audit trail as
  /// rule "experimental-rule", so unsound candidate rules are caught by the
  /// auditor before they can corrupt results. Must return a valid
  /// expression in the same context (possibly its argument).
  std::function<const Expr *(Context &, const Expr *)> ExperimentalRule;

  /// Fallback for non-polynomial residue the abstraction path cannot
  /// reduce: called with each simplified non-poly sub-result that still
  /// has MBA alternation, it may return a proved-equivalent replacement
  /// (or null to decline). Installed only when pickBetter judges it an
  /// improvement; recorded in the audit trail as rule "synth-fallback".
  /// Wire synth::Synthesizer::fallbackHook() here — its results are gated
  /// by the staged equivalence checker, so the hook cannot change
  /// semantics, unlike ExperimentalRule.
  std::function<const Expr *(Context &, const Expr *)> SynthFallback;

  /// Memoize signature -> normalized combination (the look-up table of
  /// Section 4.5).
  bool EnableCache = true;

  /// Cross-call, cross-thread simplification cache (mba/SimplifyCache.h):
  /// a semantic layer at the linear rebuild plus a structural whole-result
  /// layer. Shared between solver instances; null keeps the solver
  /// self-contained. Cached and uncached runs produce bit-identical
  /// output. The result layer is suspended while Trail, ExperimentalRule
  /// or SynthFallback is set (a cache hit would skip the recorded/extended
  /// pipeline, and two distinct hooks would alias one fingerprint).
  SimplifyCache *SharedCache = nullptr;

  /// Cross-call, cross-thread basis-solve cache (mba/Basis.h). When null,
  /// the solver uses a private BasisCache, preserving the per-instance
  /// lookup-table behaviour. Only consulted when EnableCache is set.
  BasisCache *SharedBasisCache = nullptr;

  /// Maximum variable count for the final-step optimization (function
  /// enumeration is exponential in 2^t).
  unsigned MaxFinalOptVars = 3;

  /// Recursion budget for re-simplification of substituted results.
  unsigned MaxDepth = 16;
};

/// Cumulative statistics across simplify() calls.
struct SimplifyStats {
  double Seconds = 0;
  size_t ArenaBytesDelta = 0; ///< context arena growth during simplify()
  /// Estimated transient working-set bytes (signature vectors, polynomial
  /// term maps, lookup-table entries). The arena only holds expression
  /// nodes, so this is the dominant memory term for Table 8.
  size_t TransientBytes = 0;
  size_t CacheHits = 0;
  size_t CacheMisses = 0;
  unsigned LinearRuns = 0;  ///< linear-path simplifications
  unsigned PolyRuns = 0;    ///< polynomial-path simplifications
  unsigned NonPolyRuns = 0; ///< non-polynomial-path simplifications
};

/// The MBA-Solver simplification engine. Stateful only through the lookup
/// cache and statistics; simplify() may be called any number of times.
class MBASolver {
public:
  explicit MBASolver(Context &Ctx, SimplifyOptions Opts = SimplifyOptions());

  /// Simplifies \p E to an equivalent expression with lower (usually zero
  /// or near-zero) MBA alternation. Always returns a valid expression; when
  /// no reduction is found the input is returned unchanged.
  const Expr *simplify(const Expr *E);

  const SimplifyStats &stats() const { return Stats; }
  void resetStats() { Stats = SimplifyStats(); }

  const SimplifyOptions &options() const { return Opts; }

private:
  const Expr *simplifyRec(const Expr *E, unsigned Depth);
  const Expr *simplifyLinear(const Expr *E,
                             const std::vector<const Expr *> &Vars);
  const Expr *simplifyPoly(const Expr *E, unsigned Depth);
  const Expr *simplifyNonPoly(const Expr *E, unsigned Depth);
  const Expr *rebuildWithSimplifiedChildren(const Expr *E, unsigned Depth);

  /// If \p E is a linear expression whose signature is 0/1-valued — i.e.
  /// semantically a pure bitwise function (e.g. -x-1 == ~x) — returns that
  /// bitwise form; otherwise nullptr.
  const Expr *recognizeBitwise(const Expr *E);
  const Expr *arithReduceOpaque(const Expr *E);
  const Expr *finalOptimize(const Expr *E);

  /// Looks up / computes the normalized combination of a signature.
  /// \p AllowAuto permits per-input basis selection (AutoBasis option);
  /// the polynomial path passes false — its atoms must all normalize in
  /// one coherent basis or cross-atom cancellation breaks.
  LinearCombo normalizedCombo(const std::vector<uint64_t> &Sig,
                              const std::vector<const Expr *> &Vars,
                              bool AllowAuto);

  /// Returns the preferred of two equivalent forms (lower alternation,
  /// then shorter, then fewer DAG nodes).
  const Expr *pickBetter(const Expr *A, const Expr *B) const;

  /// A fresh variable not used anywhere in the context yet.
  const Expr *freshTempVar();

  /// True when any observer wants per-rule records — the audit trail, the
  /// metrics registry (rule attribution), or an active query-log record.
  /// Callers use it to gate the timing/node-counting work around a step.
  bool noting() const;

  /// Records a rewrite step into the opt-in audit trail and, when metrics
  /// or the query log are on, into the rule-attribution registry and the
  /// active flight-recorder record (fires / ns / node delta). \p Ns is the
  /// step's wall time when the caller measured one (gated on noting()).
  void note(const char *Rule, const Expr *Before, const Expr *After,
            uint64_t Ns = 0);

  /// Semantic key of a basis solve: hash(width, basis mode, signature) —
  /// plus the variable names in AutoBasis mode, whose print-length
  /// tie-break depends on them. \p Auto selects the mode tag.
  uint64_t basisCacheKey(const std::vector<uint64_t> &Sig,
                         const std::vector<const Expr *> &Vars,
                         bool Auto) const;

  /// Semantic key of a full linear rebuild: the basis key extended with
  /// the variable names (the rebuilt expression references them).
  uint64_t linearCacheKey(const std::vector<uint64_t> &Sig,
                          const std::vector<const Expr *> &Vars) const;

  BasisCache &basisCache() {
    return Opts.SharedBasisCache ? *Opts.SharedBasisCache : OwnBasisCache;
  }

  Context &Ctx;
  SimplifyOptions Opts;
  SimplifyStats Stats;

  /// Fingerprint of every option that affects output, folded into the
  /// structural result-layer key so solvers with different configurations
  /// can share one SimplifyCache.
  uint64_t OptionsFp = 0;

  /// Private basis-solve memo (Section 4.5 lookup table) used when no
  /// shared BasisCache is configured.
  BasisCache OwnBasisCache;

  /// Memo of completed top-level rewrites, keyed on input node.
  std::unordered_map<const Expr *, const Expr *> ResultMemo;

  /// Temp-name state, reset at each public simplify() entry so temporary
  /// numbering depends only on the input expression — never on what else
  /// the context or other corpus entries have allocated. That makes
  /// simplified *expressions* (not just verdicts) identical across job
  /// counts and cache configurations.
  std::unordered_set<std::string> ReservedNames; ///< input variable names
  unsigned NextTempId = 0;
};

} // namespace mba

#endif // MBA_MBA_SIMPLIFIER_H
