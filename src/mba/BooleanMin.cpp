//===- mba/BooleanMin.cpp - Minimal bitwise expression synthesis ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/BooleanMin.h"

#include "ast/Printer.h"
#include "linalg/TruthTable.h"

#include <array>
#include <string>
#include <vector>

using namespace mba;

namespace {

/// How a function is built from smaller ones; indexes into the table.
struct Recipe {
  enum KindTy : uint8_t { Unset, Leaf0, Leaf1, LeafVar, NotOp, AndOp, OrOp, XorOp };
  KindTy Kind = Unset;
  uint8_t VarPos = 0;   // LeafVar
  uint16_t A = 0, B = 0; // operand truth tables for operators
  unsigned Cost = ~0u;  // operator count
};

/// Closure table for one variable count: Recipes[f] describes the cheapest
/// construction of truth function f.
struct SynthTable {
  unsigned NumVars;
  std::vector<Recipe> Recipes;

  explicit SynthTable(unsigned T) : NumVars(T) {
    unsigned Rows = 1u << T;
    uint32_t FullMask = (Rows == 32) ? ~0u : ((1u << Rows) - 1);
    size_t NumFuncs = (size_t)1 << Rows;
    Recipes.resize(NumFuncs);

    auto Relax = [&](uint32_t F, Recipe R) {
      if (R.Cost < Recipes[F].Cost)
        Recipes[F] = R;
    };

    // Leaves: constants cost 0 operators, variables cost 0 operators.
    Relax(0, {Recipe::Leaf0, 0, 0, 0, 0});
    Relax(FullMask, {Recipe::Leaf1, 0, 0, 0, 0});
    for (unsigned V = 0; V != T; ++V) {
      uint32_t Column = 0;
      for (unsigned Row = 0; Row != Rows; ++Row)
        if (truthBit(Row, V, T))
          Column |= 1u << Row;
      Relax(Column, {Recipe::LeafVar, (uint8_t)V, 0, 0, 0});
    }

    // Fixpoint closure: combine all known functions until costs stabilize.
    // The function space is tiny (<= 256 entries for t = 3).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t A = 0; A != NumFuncs; ++A) {
        if (Recipes[A].Kind == Recipe::Unset)
          continue;
        unsigned CostA = Recipes[A].Cost;
        // Unary complement.
        {
          uint32_t F = ~A & FullMask;
          if (CostA + 1 < Recipes[F].Cost) {
            Recipes[F] = {Recipe::NotOp, 0, (uint16_t)A, 0, CostA + 1};
            Changed = true;
          }
        }
        for (uint32_t B = A; B != NumFuncs; ++B) {
          if (Recipes[B].Kind == Recipe::Unset)
            continue;
          unsigned PairCost = CostA + Recipes[B].Cost + 1;
          struct {
            Recipe::KindTy K;
            uint32_t F;
          } Ops[] = {{Recipe::AndOp, A & B},
                     {Recipe::OrOp, A | B},
                     {Recipe::XorOp, A ^ B}};
          for (const auto &[K, F] : Ops) {
            if (PairCost < Recipes[F].Cost) {
              Recipes[F] = {K, 0, (uint16_t)A, (uint16_t)B, PairCost};
              Changed = true;
            }
          }
        }
      }
    }
  }

  const Expr *build(Context &Ctx, uint32_t F,
                    std::span<const Expr *const> Vars) const {
    const Recipe &R = Recipes[F];
    assert(R.Kind != Recipe::Unset && "function space closure incomplete");
    switch (R.Kind) {
    case Recipe::Leaf0:
      return Ctx.getZero();
    case Recipe::Leaf1:
      return Ctx.getAllOnes();
    case Recipe::LeafVar:
      return Vars[R.VarPos];
    case Recipe::NotOp:
      return Ctx.getNot(build(Ctx, R.A, Vars));
    case Recipe::AndOp:
    case Recipe::OrOp:
    case Recipe::XorOp: {
      const Expr *L = build(Ctx, R.A, Vars);
      const Expr *Rhs = build(Ctx, R.B, Vars);
      // Operand function ids carry no notion of variable order; print in
      // (length, lexicographic) order so x&y never renders as y&x.
      std::string LS = printExpr(Ctx, L), RS = printExpr(Ctx, Rhs);
      if (std::make_pair(LS.size(), LS) > std::make_pair(RS.size(), RS))
        std::swap(L, Rhs);
      ExprKind K = R.Kind == Recipe::AndOp  ? ExprKind::And
                   : R.Kind == Recipe::OrOp ? ExprKind::Or
                                            : ExprKind::Xor;
      return Ctx.getBinary(K, L, Rhs);
    }
    case Recipe::Unset:
      break;
    }
    return nullptr;
  }
};

const SynthTable &tableFor(unsigned T) {
  assert(T >= 1 && T <= MaxBooleanMinVars && "unsupported variable count");
  // Lazily constructed per variable count; thread-safe per C++11 statics.
  static const SynthTable Table1(1);
  static const SynthTable Table2(2);
  static const SynthTable Table3(3);
  switch (T) {
  case 1:
    return Table1;
  case 2:
    return Table2;
  default:
    return Table3;
  }
}

} // namespace

const Expr *mba::synthesizeBitwise(Context &Ctx,
                                   std::span<const Expr *const> Vars,
                                   uint32_t Truth, unsigned *CostOut) {
  unsigned T = (unsigned)Vars.size();
  const SynthTable &Table = tableFor(T);
  unsigned Rows = 1u << T;
  uint32_t FullMask = (Rows == 32) ? ~0u : ((1u << Rows) - 1);
  assert((Truth & ~FullMask) == 0 && "truth bits beyond table rows");
  (void)FullMask;
  if (CostOut)
    *CostOut = Table.Recipes[Truth].Cost;
  return Table.build(Ctx, Truth, Vars);
}
