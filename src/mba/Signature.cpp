//===- mba/Signature.cpp - MBA signature vectors ----------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/Signature.h"

#include "ast/BitslicedEval.h"
#include "ast/CompiledEval.h"
#include "support/Bitslice.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "linalg/TruthTable.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

using namespace mba;

std::vector<uint64_t>
mba::computeSignature(const Context &Ctx, const Expr *E,
                      std::span<const Expr *const> Vars) {
  MBA_TRACE_SPAN("mba.signature");
  static telemetry::Counter &Signatures =
      telemetry::counter("signature.computed");
  Signatures.add();
  unsigned T = (unsigned)Vars.size();
  assert(T <= 20 && "signature would be too large");
  const size_t Rows = (size_t)1 << T;
  std::vector<uint64_t> Sig(Rows);
  // 2^t corner evaluations of the same DAG, 64 per block. The compiled
  // program is cached on the context (pointer identity = structural
  // identity), so re-signaturing a DAG the simplifier already saw costs no
  // compile at all. Corner inputs are 0 or all-ones — the evaluator's
  // Uniform fast path.
  const BitslicedExpr &Compiled = Ctx.getBitsliced(E);
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  // Lane j of block Base holds corner Base+j, whose variable-I truth bit is
  // bit T-1-I of Base+j (truthBit's ordering) — O(T) mask setup per block.
  if (Rows <= bitslice::LanesPerBlock) {
    // Small tables run the original 64-lane path: the wide back ends only
    // add masked-off lanes below one block, so this also keeps tiny
    // signatures (the common 2-4 variable case) at their scalar cost.
    std::vector<uint64_t> VarMasks(MaxIndex + 1);
    for (unsigned I = 0; I != T; ++I)
      VarMasks[Vars[I]->varIndex()] = bitslice::cornerMask(T - 1 - I, 0);
    Compiled.evaluateCorners(VarMasks, (unsigned)Rows, Sig.data());
    for (size_t J = 0; J != Rows; ++J)
      Sig[J] = (0 - Sig[J]) & Ctx.mask();
    return Sig;
  }
  // Tables past one block drive the SIMD wide engine: each wide block
  // covers Words x 64 corners, with per-64-lane-word masks.
  const unsigned Words = BitslicedExpr::wideLanes() / 64;
  const size_t BlockLanes = (size_t)Words * 64;
  std::vector<uint64_t> VarMasks(((size_t)MaxIndex + 1) * Words);
  for (size_t Base = 0; Base < Rows; Base += BlockLanes) {
    unsigned NumLanes = (unsigned)std::min<size_t>(BlockLanes, Rows - Base);
    for (unsigned I = 0; I != T; ++I) {
      uint64_t *M = VarMasks.data() + (size_t)Vars[I]->varIndex() * Words;
      for (unsigned W = 0; W != Words; ++W)
        M[W] = bitslice::cornerMask(T - 1 - I, Base + 64 * W);
    }
    Compiled.evaluateCornersWide(VarMasks, NumLanes, Sig.data() + Base);
    for (unsigned J = 0; J != NumLanes; ++J)
      Sig[Base + J] = (0 - Sig[Base + J]) & Ctx.mask();
  }
  return Sig;
}

std::vector<uint64_t>
mba::computeSignatureScalar(const Context &Ctx, const Expr *E,
                            std::span<const Expr *const> Vars) {
  unsigned T = (unsigned)Vars.size();
  assert(T <= 20 && "signature would be too large");
  std::vector<uint64_t> Sig(1u << T);
  // 2^t evaluations of the same DAG: compile once, replay per corner.
  CompiledExpr Compiled(Ctx, E);
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  std::vector<uint64_t> Assignment(MaxIndex + 1, 0);
  for (unsigned Row = 0; Row != (1u << T); ++Row) {
    for (unsigned I = 0; I != T; ++I)
      Assignment[Vars[I]->varIndex()] = truthBit(Row, I, T) ? Ctx.mask() : 0;
    Sig[Row] = (0 - Compiled.evaluate(Assignment)) & Ctx.mask();
  }
  return Sig;
}

std::vector<uint64_t> mba::computeSignature(const Context &Ctx, const Expr *E,
                                            std::vector<const Expr *> *VarsOut) {
  std::vector<const Expr *> Vars = collectVariables(E);
  auto Sig = computeSignature(Ctx, E, Vars);
  if (VarsOut)
    *VarsOut = std::move(Vars);
  return Sig;
}

bool mba::linearMBAEquivalent(const Context &Ctx, const Expr *E1,
                              const Expr *E2) {
  // Union of the two variable sets, name-sorted for a canonical row order.
  std::vector<const Expr *> Vars = collectVariables(E1);
  for (const Expr *V : collectVariables(E2))
    Vars.push_back(V);
  std::sort(Vars.begin(), Vars.end(), [](const Expr *A, const Expr *B) {
    return std::strcmp(A->varName(), B->varName()) < 0;
  });
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return computeSignature(Ctx, E1, Vars) == computeSignature(Ctx, E2, Vars);
}
