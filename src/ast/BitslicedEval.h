//===- ast/BitslicedEval.h - Bitsliced batch DAG evaluation -----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transposed (bitsliced) evaluator: 64 evaluation points are packed one
/// per bit of a uint64_t and the expression DAG is executed once over the
/// whole block with the word kernels of support/Bitslice.h. This replaces
/// point-at-a-time loops in signature construction (2^t corner evaluations
/// per Definition 3), sampling refutation, and the fuzz/property agreement
/// sweeps, where the same DAG is evaluated on thousands of inputs.
///
/// Each compiled instruction's block value carries one of four
/// representations, which is what makes corner evaluation fast:
///  * Uniform — every bit slice is the same word M (each point's value is 0
///    or all-ones). Truth-table corners start Uniform, and bitwise operators
///    keep them Uniform, so the bitwise bulk of an MBA costs ONE word op per
///    DAG node for all 64 points together.
///  * Splat — every point has the same constant value (folded scalars).
///  * Lanes — direct per-point values. Used once a corner-mode value stops
///    being uniform (a coefficient multiply, an addition), and for wide
///    widths in point mode: arithmetic is then NumLanes independent word
///    ops per node (vectorizable, no carry ripple), and only the *live*
///    lanes are computed — a 3-variable signature touches 8 lanes, not 64.
///  * Sliced — the transposed form, width-w slice words. Wins for narrow
///    widths in point mode, where w slice ops cover all 64 points.
///
/// Arithmetic on mixed representations lowers to the cheapest available
/// kernel (e.g. coefficient * bitwise-term — the backbone of linear MBA —
/// is one select per live lane, no ripple or multiply).
///
/// Blocks wider than 64 lanes run on the SIMD wide engine
/// (support/Bitslice.h): the active ISA back end (scalar/AVX2/AVX-512,
/// runtime-dispatched) processes 64 x Words lanes per block through the
/// same representation lattice, with every per-lane loop lowered to a
/// WideKernels call. evaluatePoints sizes its blocks to the active back
/// end automatically, so signature computation over many corners,
/// SignatureChecker sampling and the fuzz agreement sweeps widen for
/// free; blocks of <= 64 lanes keep the original in-line path (identical
/// code and cost to the pre-SIMD evaluator, and the guaranteed-available
/// fallback). All paths are bit-identical per lane.
///
/// Instances are not thread-safe (evaluation borrows the owning Context's
/// shared scratch) and follow the one-context-per-thread rule. Prefer
/// Context::getBitsliced(E) over constructing directly: interning makes the
/// Expr pointer the structural identity, so compiled programs are cached
/// per context and repeated signature construction pays the compile cost
/// only once per distinct DAG.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_BITSLICEDEVAL_H
#define MBA_AST_BITSLICEDEVAL_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "support/Bitslice.h"

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace mba {

/// A bitsliced batch evaluator for one expression DAG.
class BitslicedExpr {
public:
  /// Compiles \p E. Valid as long as the context lives.
  BitslicedExpr(const Context &Ctx, const Expr *E);

  /// Lanes one wide block advances under the currently active SIMD back
  /// end: 64 (scalar), 256 (AVX2) or 512 (AVX-512). Callers driving
  /// evaluateCornersWide lay their masks out against this.
  static unsigned wideLanes() {
    return bitslice::activeKernels().Words * 64;
  }

  /// Evaluates one block of truth-table corners: lane j of the variable
  /// with dense index i reads all-ones when bit j of VarMasks[i] is set,
  /// else 0 (indices beyond VarMasks read 0). Writes \p NumLanes values,
  /// masked to the width, into \p Out. NumLanes <= 64.
  void evaluateCorners(std::span<const uint64_t> VarMasks, unsigned NumLanes,
                       uint64_t *Out) const;

  /// Wide-block variant of evaluateCorners on the active SIMD back end:
  /// \p VarMaskWords is var-major with wideLanes()/64 words per variable
  /// (lane 64*w + j of dense variable i reads bit j of
  /// VarMaskWords[i * Words + w]). NumLanes <= wideLanes().
  void evaluateCornersWide(std::span<const uint64_t> VarMaskWords,
                           unsigned NumLanes, uint64_t *Out) const;

  /// Evaluates one block of arbitrary points: VarLanes[i] points to
  /// \p NumLanes input words for the variable with dense index i (null or
  /// out-of-range entries read 0). NumLanes <= wideLanes(); blocks above
  /// 64 lanes run on the SIMD wide engine.
  void evaluateBlock(std::span<const uint64_t *const> VarLanes,
                     unsigned NumLanes, uint64_t *Out) const;

  /// Convenience batch driver over any number of points: VarLanes[i] holds
  /// \p NumPoints values for dense variable index i; processes
  /// ceil(NumPoints/wideLanes()) blocks and returns the NumPoints outputs.
  std::vector<uint64_t>
  evaluatePoints(std::span<const uint64_t *const> VarLanes,
                 size_t NumPoints) const;

  /// Number of compiled instructions (= distinct DAG nodes).
  size_t size() const { return Program.size(); }

private:
  enum class Op : uint8_t {
    LoadVar,
    LoadConst,
    Not,
    Neg,
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor
  };

  /// Block-value representation tag (see file comment).
  enum class Rep : uint8_t { Uniform, Splat, Lanes, Sliced };

  struct Inst {
    Op Opcode;
    uint32_t A = 0; // source register / dense variable index
    uint32_t B = 0; // second source register
    uint64_t Imm = 0; // constant payload
  };

  void run(unsigned NumLanes, uint64_t *Out) const;
  void runLanes(unsigned NumLanes) const;
  void runSliced(unsigned NumLanes) const;
  const uint64_t *slicesOf(uint32_t Reg, uint64_t *Tmp) const;
  const uint64_t *lanesOf(uint32_t Reg, uint64_t *Tmp,
                          unsigned NumLanes) const;
  uint64_t *slot(uint32_t Reg) const;

  // Wide-block path (> 64 lanes, or wide corner masks): same
  // representation lattice, every per-lane loop a WideKernels call.
  // RootOut, when non-null, is where a Lanes-representation root is
  // written directly (skipping the slot + epilogue copy).
  void runWide(const bitslice::WideKernels &WK, unsigned NumLanes,
               uint64_t *Out) const;
  void runWideLanes(const bitslice::WideKernels &WK, unsigned NumLanes,
                    uint64_t *RootOut) const;
  void runWideSliced(const bitslice::WideKernels &WK,
                     unsigned NumLanes) const;
  const uint64_t *wideLanesOf(const bitslice::WideKernels &WK, uint32_t Reg,
                              uint64_t *Tmp, unsigned NumLanes) const;
  const uint64_t *wideSlicesOf(const bitslice::WideKernels &WK, uint32_t Reg,
                               uint64_t *Tmp) const;
  uint64_t *wideSlot(uint32_t Reg) const;

  const Context *Ctx; // owning context; outlives this (nodes are interned)
  unsigned Width;
  uint64_t Mask;
  std::vector<Inst> Program; // instruction i writes register i
  // Liveness-based slot assignment for the wide path: register i's block
  // value lives in slot SlotOf[i], and slots are reused once their last
  // reader has run, so the per-block working set tracks the DAG's live
  // width (a handful of slots) instead of its node count — the difference
  // between spilling to L2 and staying L1-resident at 256/512 lanes. A
  // destination slot never aliases one of its source slots (sources are
  // freed only after the destination is assigned), so kernels need not be
  // in-place safe. The legacy 64-lane path keeps its one-slot-per-register
  // layout.
  std::vector<uint32_t> SlotOf;
  unsigned NumSlots = 0;

  // Evaluation scratch, carved per run() out of the owning Context's shared
  // buffer (Context::evalScratch) so cached programs stay small (register i
  // of the current block): the representation tags, the Uniform-mask /
  // Splat-value words, and the 64-word value slots. Uninitialized; only
  // registers tagged Lanes/Sliced ever touch their slot.
  mutable Rep *RepOf = nullptr;
  mutable uint64_t *Word = nullptr;  // Uniform mask / Splat value
  mutable uint64_t *Slots = nullptr; // Program.size() slots of 64 words
  // Variable load plan for the current call (set by the public entries).
  mutable std::span<const uint64_t> CornerMasks;
  mutable std::span<const uint64_t *const> LaneInputs;
  mutable bool CornerMode = false;
  // Wide-run state: words per slice of the running back end (slots are
  // 64 * BlockWords words; a Uniform register's mask occupies the first
  // BlockWords words of its slot, Word[] is Splat-only) and the per-var
  // word count of CornerMasks in evaluateCornersWide.
  mutable unsigned BlockWords = 1;
  mutable unsigned CornerMaskWords = 1;
  // Where a Lanes-representation register's data actually lives: its slot,
  // the caller's output buffer (root direct-write), or — for a full-width
  // variable load in point mode — the caller's input array itself
  // (zero-copy; the inputs are already width-masked when Mask is all
  // ones). Valid only while RepOf[i] == Rep::Lanes during a wide run.
  mutable const uint64_t **LanePtr = nullptr;
};

} // namespace mba

#endif // MBA_AST_BITSLICEDEVAL_H
