//===- ast/Evaluator.h - Concrete evaluation of MBA expressions -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete evaluation of an expression under a variable assignment, modulo
/// 2^w. This is the semantic ground truth for the whole library: signature
/// vectors, the Syntia-style I/O oracle, randomized equivalence testing, and
/// the property tests all reduce to this function.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_EVALUATOR_H
#define MBA_AST_EVALUATOR_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <span>
#include <unordered_map>

namespace mba {

/// Evaluates \p E with variable \c i (dense context index) bound to
/// \p VarValues[i]. Values are truncated to the context width. Indices not
/// covered by \p VarValues evaluate as 0.
///
/// Shared subtrees are evaluated once (memoized on node identity), so
/// evaluation is linear in the DAG size.
uint64_t evaluate(const Context &Ctx, const Expr *E,
                  std::span<const uint64_t> VarValues);

/// As above but with an explicit map from variable node to value; variables
/// absent from the map evaluate as 0.
uint64_t evaluate(const Context &Ctx, const Expr *E,
                  const std::unordered_map<const Expr *, uint64_t> &VarValues);

} // namespace mba

#endif // MBA_AST_EVALUATOR_H
