//===- ast/CompiledEval.cpp - Bytecode-compiled evaluation ----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/CompiledEval.h"

#include "ast/ExprUtils.h"

#include <unordered_map>

using namespace mba;

CompiledExpr::CompiledExpr(const Context &Ctx, const Expr *E)
    : Mask(Ctx.mask()) {
  std::unordered_map<const Expr *, uint32_t> RegOf;
  forEachNodePostOrder(E, [&](const Expr *N) {
    Inst I;
    switch (N->kind()) {
    case ExprKind::Var:
      I.Opcode = Op::LoadVar;
      I.A = N->varIndex();
      break;
    case ExprKind::Const:
      I.Opcode = Op::LoadConst;
      I.Imm = N->constValue();
      break;
    case ExprKind::Not:
      I.Opcode = Op::Not;
      I.A = RegOf.at(N->operand());
      break;
    case ExprKind::Neg:
      I.Opcode = Op::Neg;
      I.A = RegOf.at(N->operand());
      break;
    default:
      switch (N->kind()) {
      case ExprKind::Add:
        I.Opcode = Op::Add;
        break;
      case ExprKind::Sub:
        I.Opcode = Op::Sub;
        break;
      case ExprKind::Mul:
        I.Opcode = Op::Mul;
        break;
      case ExprKind::And:
        I.Opcode = Op::And;
        break;
      case ExprKind::Or:
        I.Opcode = Op::Or;
        break;
      default:
        I.Opcode = Op::Xor;
        break;
      }
      I.A = RegOf.at(N->lhs());
      I.B = RegOf.at(N->rhs());
      break;
    }
    RegOf.emplace(N, (uint32_t)Program.size());
    Program.push_back(I);
  });
  Registers.resize(Program.size());
}

uint64_t CompiledExpr::evaluate(std::span<const uint64_t> VarValues) const {
  uint64_t *R = Registers.data();
  for (size_t I = 0, N = Program.size(); I != N; ++I) {
    const Inst &Ins = Program[I];
    uint64_t V = 0;
    switch (Ins.Opcode) {
    case Op::LoadVar:
      V = Ins.A < VarValues.size() ? VarValues[Ins.A] & Mask : 0;
      break;
    case Op::LoadConst:
      V = Ins.Imm;
      break;
    case Op::Not:
      V = ~R[Ins.A] & Mask;
      break;
    case Op::Neg:
      V = (0 - R[Ins.A]) & Mask;
      break;
    case Op::Add:
      V = (R[Ins.A] + R[Ins.B]) & Mask;
      break;
    case Op::Sub:
      V = (R[Ins.A] - R[Ins.B]) & Mask;
      break;
    case Op::Mul:
      V = (R[Ins.A] * R[Ins.B]) & Mask;
      break;
    case Op::And:
      V = R[Ins.A] & R[Ins.B];
      break;
    case Op::Or:
      V = R[Ins.A] | R[Ins.B];
      break;
    case Op::Xor:
      V = R[Ins.A] ^ R[Ins.B];
      break;
    }
    R[I] = V;
  }
  return Program.empty() ? 0 : R[Program.size() - 1];
}
