//===- ast/Printer.cpp - Expression pretty printer --------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"

#include <functional>

using namespace mba;

namespace {

// Precedence levels, higher binds tighter (Python/C ordering for this
// operator subset).
enum Precedence {
  PrecOr = 1,
  PrecXor = 2,
  PrecAnd = 3,
  PrecSum = 4,
  PrecMul = 5,
  PrecUnary = 6,
  PrecAtom = 7
};

int precedenceOf(ExprKind K) {
  switch (K) {
  case ExprKind::Or:
    return PrecOr;
  case ExprKind::Xor:
    return PrecXor;
  case ExprKind::And:
    return PrecAnd;
  case ExprKind::Add:
  case ExprKind::Sub:
    return PrecSum;
  case ExprKind::Mul:
    return PrecMul;
  case ExprKind::Not:
  case ExprKind::Neg:
    return PrecUnary;
  case ExprKind::Var:
  case ExprKind::Const:
    return PrecAtom;
  }
  return PrecAtom;
}

const char *binaryOpText(ExprKind K) {
  switch (K) {
  case ExprKind::Add:
    return "+";
  case ExprKind::Sub:
    return "-";
  case ExprKind::Mul:
    return "*";
  case ExprKind::And:
    return "&";
  case ExprKind::Or:
    return "|";
  case ExprKind::Xor:
    return "^";
  default:
    assert(false && "not a binary operator");
    return "?";
  }
}

} // namespace

std::string mba::printExpr(const Context &Ctx, const Expr *E) {
  std::string Out;
  // Child is printed parenthesized when its precedence is lower than the
  // parent's, or equal on the right of the non-commutative '-' (and of '-'
  // only: all bitwise operators and +,* are associative so equal precedence
  // on either side needs no parens except the Sub/Add mix on the right).
  std::function<void(const Expr *, int, bool)> Print =
      [&](const Expr *N, int ParentPrec, bool RightOfNonAssoc) {
        int Prec = precedenceOf(N->kind());
        bool NeedParens =
            Prec < ParentPrec || (Prec == ParentPrec && RightOfNonAssoc);
        if (NeedParens)
          Out += '(';
        switch (N->kind()) {
        case ExprKind::Var:
          Out += N->varName();
          break;
        case ExprKind::Const: {
          int64_t S = Ctx.toSigned(N->constValue());
          Out += std::to_string(S);
          break;
        }
        case ExprKind::Not:
          Out += '~';
          Print(N->operand(), PrecUnary, false);
          break;
        case ExprKind::Neg:
          Out += '-';
          Print(N->operand(), PrecUnary, false);
          break;
        default: {
          const char *Op = binaryOpText(N->kind());
          Print(N->lhs(), Prec, false);
          Out += Op;
          // '+' and '-' share a precedence level and '-' is left-
          // associative; the right child of '-' must parenthesize equal-
          // precedence children. '-' or '+' under the *right* of '-'
          // both change meaning without parens.
          bool RightNonAssoc = N->kind() == ExprKind::Sub;
          Print(N->rhs(), Prec, RightNonAssoc);
          break;
        }
        }
        if (NeedParens)
          Out += ')';
      };
  // A negative constant printed as right operand of '-' or '*'/'~' etc. is
  // handled by NeedParens only for precedence; "a - -1" would print as
  // "a--1" which re-parses as a - (-1) correctly (two '-' tokens), but is
  // ugly; precedence of Const is PrecAtom so no parens are added. The
  // parser handles consecutive '-' signs, so round-tripping is safe.
  Print(E, 0, false);
  return Out;
}
