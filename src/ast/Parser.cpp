//===- ast/Parser.cpp - Text parser for MBA expressions ---------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

#include "support/Telemetry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace mba;

namespace {

class ParserImpl {
public:
  ParserImpl(Context &Ctx, std::string_view Text) : Ctx(Ctx), Text(Text) {}

  ParseResult run() {
    const Expr *E = parseOr();
    if (!E)
      return makeError();
    skipSpace();
    if (Pos != Text.size()) {
      fail("unexpected trailing input");
      return makeError();
    }
    ParseResult R;
    R.E = E;
    return R;
  }

private:
  ParseResult makeError() {
    ParseResult R;
    R.Error = ErrorMsg;
    R.ErrorPos = ErrorPos;
    return R;
  }

  void fail(const std::string &Msg) {
    if (ErrorMsg.empty()) {
      ErrorMsg = Msg;
      ErrorPos = Pos;
    }
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  }

  bool peekIs(char C) {
    skipSpace();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool consume(char C) {
    if (!peekIs(C))
      return false;
    ++Pos;
    return true;
  }

  // expr := xor ('|' xor)*
  const Expr *parseOr() {
    const Expr *L = parseXor();
    if (!L)
      return nullptr;
    while (consume('|')) {
      const Expr *R = parseXor();
      if (!R)
        return nullptr;
      L = Ctx.getOr(L, R);
    }
    return L;
  }

  // xor := and ('^' and)*
  const Expr *parseXor() {
    const Expr *L = parseAnd();
    if (!L)
      return nullptr;
    while (consume('^')) {
      const Expr *R = parseAnd();
      if (!R)
        return nullptr;
      L = Ctx.getXor(L, R);
    }
    return L;
  }

  // and := sum ('&' sum)*
  const Expr *parseAnd() {
    const Expr *L = parseSum();
    if (!L)
      return nullptr;
    while (consume('&')) {
      const Expr *R = parseSum();
      if (!R)
        return nullptr;
      L = Ctx.getAnd(L, R);
    }
    return L;
  }

  // sum := product (('+' | '-') product)*
  const Expr *parseSum() {
    const Expr *L = parseProduct();
    if (!L)
      return nullptr;
    for (;;) {
      if (consume('+')) {
        const Expr *R = parseProduct();
        if (!R)
          return nullptr;
        L = Ctx.getAdd(L, R);
      } else if (consume('-')) {
        const Expr *R = parseProduct();
        if (!R)
          return nullptr;
        L = Ctx.getSub(L, R);
      } else {
        return L;
      }
    }
  }

  // product := unary ('*' unary)*
  const Expr *parseProduct() {
    const Expr *L = parseUnary();
    if (!L)
      return nullptr;
    while (consume('*')) {
      const Expr *R = parseUnary();
      if (!R)
        return nullptr;
      L = Ctx.getMul(L, R);
    }
    return L;
  }

  // unary := ('-' | '~')* primary
  const Expr *parseUnary() {
    if (consume('-')) {
      const Expr *A = parseUnary();
      if (!A)
        return nullptr;
      // Fold -<const> directly so "-1" parses to the all-ones constant
      // rather than Neg(Const 1); the two are equal but the constant form
      // is what the paper's tables use.
      if (A->isConst())
        return Ctx.getConst(0 - A->constValue());
      return Ctx.getNeg(A);
    }
    if (consume('~')) {
      const Expr *A = parseUnary();
      if (!A)
        return nullptr;
      if (A->isConst())
        return Ctx.getConst(~A->constValue());
      return Ctx.getNot(A);
    }
    return parsePrimary();
  }

  // primary := NUMBER | IDENT | '(' expr ')'
  const Expr *parsePrimary() {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      const Expr *E = parseOr();
      if (!E)
        return nullptr;
      if (!consume(')')) {
        fail("expected ')'");
        return nullptr;
      }
      return E;
    }
    if (std::isdigit((unsigned char)C))
      return parseNumber();
    if (std::isalpha((unsigned char)C) || C == '_')
      return parseIdent();
    fail(std::string("unexpected character '") + C + "'");
    return nullptr;
  }

  const Expr *parseNumber() {
    size_t Start = Pos;
    int Base = 10;
    if (Text.size() - Pos > 2 && Text[Pos] == '0' &&
        (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X')) {
      Base = 16;
      Pos += 2;
      Start = Pos;
      if (Pos >= Text.size() || !std::isxdigit((unsigned char)Text[Pos])) {
        fail("expected hex digits after 0x");
        return nullptr;
      }
    }
    uint64_t Value = 0;
    bool Overflow = false;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      int Digit;
      if (D >= '0' && D <= '9')
        Digit = D - '0';
      else if (Base == 16 && D >= 'a' && D <= 'f')
        Digit = D - 'a' + 10;
      else if (Base == 16 && D >= 'A' && D <= 'F')
        Digit = D - 'A' + 10;
      else
        break;
      uint64_t Next = Value * Base + Digit;
      if (Next / Base != Value || Next % Base != (uint64_t)Digit)
        Overflow = true; // wraps mod 2^64; still accepted, then truncated
      Value = Next;
      ++Pos;
    }
    (void)Start;
    (void)Overflow; // constants are defined modulo 2^w; wraparound is fine
    return Ctx.getConst(Value);
  }

  const Expr *parseIdent() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum((unsigned char)Text[Pos]) || Text[Pos] == '_'))
      ++Pos;
    return Ctx.getVar(Text.substr(Start, Pos - Start));
  }

  Context &Ctx;
  std::string_view Text;
  size_t Pos = 0;
  std::string ErrorMsg;
  size_t ErrorPos = 0;
};

} // namespace

ParseResult mba::parseExpr(Context &Ctx, std::string_view Text) {
  MBA_TRACE_SPAN("ast.parse");
  static telemetry::Counter &Parses = telemetry::counter("ast.parses");
  Parses.add();
  return ParserImpl(Ctx, Text).run();
}

const Expr *mba::parseOrDie(Context &Ctx, std::string_view Text) {
  ParseResult R = parseExpr(Ctx, Text);
  if (!R.ok()) {
    std::fprintf(stderr, "parse error at offset %zu: %s\nin: %.*s\n",
                 R.ErrorPos, R.Error.c_str(), (int)Text.size(), Text.data());
    std::abort();
  }
  return R.E;
}
