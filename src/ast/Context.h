//===- ast/Context.h - Expression interning context -------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Context owns all expression nodes of a given bit width and interns
/// them so that structurally identical subtrees share one node. All MBA
/// arithmetic in this library is performed modulo 2^w, matching the paper's
/// setting of n-bit two's-complement integers (the ring Z/2^n).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_CONTEXT_H
#define MBA_AST_CONTEXT_H

#include "ast/Expr.h"
#include "support/Arena.h"
#include "support/ThreadSafety.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mba {

class BitslicedExpr;

/// Capability standing for "the calling thread is the owner of this
/// Context" (see Context's threading model). It is not a lock — nothing is
/// ever blocked on it — but Clang's thread-safety analysis treats it like
/// one: the interning tables and evaluation caches are MBA_GUARDED_BY this
/// role, and the only way to satisfy the analysis is to pass through
/// Context::assertOwnedByCurrentThread() (the runtime guardrail, annotated
/// MBA_ASSERT_CAPABILITY) or adoptByCurrentThread(). Touching the mutable
/// state on a path that skips the guardrail is a compile-time diagnostic
/// under -DMBA_THREAD_SAFETY=ON and a runtime assert elsewhere.
class MBA_CAPABILITY("context-owner") ContextOwnerRole {};

/// Owns and interns Expr nodes for one bit width.
///
/// Typical use:
/// \code
///   Context Ctx(64);
///   const Expr *X = Ctx.getVar("x"), *Y = Ctx.getVar("y");
///   const Expr *E = Ctx.getAdd(X, Ctx.getAnd(X, Y));
/// \endcode
///
/// Threading model: a Context is NOT thread-safe — not even for concurrent
/// reads, because lookups and evaluation share mutable caches. The rule is
/// one Context per worker thread: parallel pipelines (bench/Harness.cpp)
/// give each worker its own Context and clone expressions into it with
/// cloneExpr() (ast/ExprUtils.h). Debug builds enforce the rule by
/// asserting that every interning mutation and cache access happens on the
/// owner thread — the thread that constructed the Context, or the last one
/// to call adoptByCurrentThread().
class Context {
public:
  /// Creates a context for \p Width-bit words. Width must be in [1, 64].
  explicit Context(unsigned Width = 64);
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  /// Re-homes the context onto the calling thread (see the class comment's
  /// threading model). Needed when a Context is constructed on one thread
  /// and handed off to another — e.g. built up front, then used by a pool
  /// worker. The handoff itself must be externally synchronized. After the
  /// call the calling thread holds the owner capability.
  void adoptByCurrentThread() MBA_ASSERT_CAPABILITY(OwnerRole) {
    Owner = std::this_thread::get_id();
  }

  /// The word width in bits.
  unsigned width() const { return Width; }

  /// Bit mask selecting the low `width()` bits of a uint64_t.
  uint64_t mask() const { return Mask; }

  /// Truncates \p V to the context width.
  uint64_t truncate(uint64_t V) const { return V & Mask; }

  /// Sign-extends the masked \p V to a signed 64-bit value. Used when
  /// printing constants and measuring coefficient magnitude.
  int64_t toSigned(uint64_t V) const {
    V &= Mask;
    uint64_t SignBit = 1ULL << (Width - 1);
    if (V & SignBit)
      return (int64_t)(V | ~Mask);
    return (int64_t)V;
  }

  /// Returns (creating on first use) the variable named \p Name. Variables
  /// are numbered densely in creation order; see Expr::varIndex().
  const Expr *getVar(std::string_view Name);

  /// Returns the variable with dense index \p Index, which must exist.
  const Expr *getVarByIndex(unsigned Index) const {
    assertOwnedByCurrentThread();
    assert(Index < Vars.size() && "variable index out of range");
    return Vars[Index];
  }

  /// Number of distinct variables created in this context.
  unsigned numVars() const {
    assertOwnedByCurrentThread();
    return (unsigned)Vars.size();
  }

  /// Returns true if a variable named \p Name already exists.
  bool hasVar(std::string_view Name) const {
    assertOwnedByCurrentThread();
    return VarsByName.contains(Name);
  }

  /// Returns the interned constant \p Value (truncated to the width).
  const Expr *getConst(uint64_t Value);

  /// Constant -1 (all ones), the paper's encoding of the all-"1" truth-table
  /// column on two's-complement integers.
  const Expr *getAllOnes() { return getConst(Mask); }
  const Expr *getZero() { return getConst(0); }
  const Expr *getOne() { return getConst(1); }

  const Expr *getNot(const Expr *A) { return getUnary(ExprKind::Not, A); }
  const Expr *getNeg(const Expr *A) { return getUnary(ExprKind::Neg, A); }
  const Expr *getAdd(const Expr *A, const Expr *B) {
    return getBinary(ExprKind::Add, A, B);
  }
  const Expr *getSub(const Expr *A, const Expr *B) {
    return getBinary(ExprKind::Sub, A, B);
  }
  const Expr *getMul(const Expr *A, const Expr *B) {
    return getBinary(ExprKind::Mul, A, B);
  }
  const Expr *getAnd(const Expr *A, const Expr *B) {
    return getBinary(ExprKind::And, A, B);
  }
  const Expr *getOr(const Expr *A, const Expr *B) {
    return getBinary(ExprKind::Or, A, B);
  }
  const Expr *getXor(const Expr *A, const Expr *B) {
    return getBinary(ExprKind::Xor, A, B);
  }

  /// Builds a unary node of kind \p K (Not or Neg).
  const Expr *getUnary(ExprKind K, const Expr *A);

  /// Builds a binary node of kind \p K.
  const Expr *getBinary(ExprKind K, const Expr *A, const Expr *B);

  /// Rebuilds \p E with new operands. Leaves are returned unchanged.
  const Expr *rebuild(const Expr *E, const Expr *NewLHS, const Expr *NewRHS);

  /// Looks up the canonical interned node a node of kind \p K with operands
  /// \p L / \p R and auxiliary payload \p Aux (constant value or variable
  /// index) resolves to, or nullptr when no such node has been interned.
  /// Used by the IR verifier (analysis/Verifier.h) to check structural
  /// uniqueness: a well-formed node must be its own canonical representative.
  const Expr *findInterned(ExprKind K, const Expr *L, const Expr *R,
                           uint64_t Aux) const;

  /// Invokes \p Fn on every node owned by this context (variables,
  /// constants, and operators), in no particular order. Verifier support.
  void forEachOwnedNode(const std::function<void(const Expr *)> &Fn) const;

  /// Returns (compiling and caching on first use) the bitsliced evaluator
  /// for \p E, which must be owned by this context. Sound as a pointer-keyed
  /// cache because interning makes the pointer the structural identity and
  /// nodes are immutable for the context's lifetime. This is what makes
  /// repeated signature construction over the same DAG (the simplifier's
  /// inner loop) cheap: the compile cost is paid once per distinct DAG.
  const BitslicedExpr &getBitsliced(const Expr *E) const;

  /// Shared evaluation scratch: returns at least \p Words words of
  /// uninitialized, context-lifetime storage. Reused by every cached
  /// evaluator (legal under the one-thread-per-context rule), so cached
  /// programs stay small instead of each holding tens of KB of slots.
  /// The pointer is invalidated by the next evalScratch() call.
  uint64_t *evalScratch(size_t Words) const;

  /// Total number of distinct nodes interned so far.
  size_t numNodes() const {
    assertOwnedByCurrentThread();
    return NumNodes;
  }

  /// Bytes of node/name storage handed out by the arena. This is the memory
  /// metric reported in the Table 8 reproduction.
  size_t bytesUsed() const { return Alloc.bytesUsed(); }

private:
  struct NodeKey {
    ExprKind Kind;
    const Expr *L;
    const Expr *R;
    uint64_t Aux; // const value, or var index

    bool operator==(const NodeKey &O) const {
      return Kind == O.Kind && L == O.L && R == O.R && Aux == O.Aux;
    }
  };

  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const {
      uint64_t H = (uint64_t)K.Kind * 0x9e3779b97f4a7c15ULL;
      H ^= (uintptr_t)K.L + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H ^= (uintptr_t)K.R + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H ^= K.Aux + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      return (size_t)H;
    }
  };

  /// Heterogeneous string hashing so name lookups take string_view without
  /// materializing a temporary std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>()(S);
    }
  };

  /// Guardrail for the one-thread-per-context rule (class comment): a
  /// runtime assert in every build, and under Clang the annotation tells
  /// the thread-safety analysis the owner capability is held on return —
  /// so the OwnerRole-guarded tables below are only reachable through this
  /// check (or adoptByCurrentThread).
  void assertOwnedByCurrentThread() const MBA_ASSERT_CAPABILITY(OwnerRole) {
    assert(std::this_thread::get_id() == Owner &&
           "Context used from a thread other than its owner; create one "
           "Context per worker (or call adoptByCurrentThread after a "
           "synchronized handoff)");
  }

  unsigned Width;
  uint64_t Mask;
  Arena Alloc;
  /// The owner-thread capability (never blocked on; see ContextOwnerRole).
  mutable ContextOwnerRole OwnerRole;
  size_t NumNodes MBA_GUARDED_BY(OwnerRole) = 0;
  std::unordered_map<NodeKey, const Expr *, NodeKeyHash>
      Interned MBA_GUARDED_BY(OwnerRole);
  std::unordered_map<std::string, const Expr *, StringHash, std::equal_to<>>
      VarsByName MBA_GUARDED_BY(OwnerRole);
  std::vector<const Expr *> Vars MBA_GUARDED_BY(OwnerRole);
  std::thread::id Owner = std::this_thread::get_id();
  mutable std::unordered_map<const Expr *, std::unique_ptr<BitslicedExpr>>
      BitslicedCache MBA_GUARDED_BY(OwnerRole);
  mutable std::vector<uint64_t> EvalScratch MBA_GUARDED_BY(OwnerRole);
};

} // namespace mba

#endif // MBA_AST_CONTEXT_H
