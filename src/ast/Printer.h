//===- ast/Printer.h - Expression pretty printer ----------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints expressions back to the surface syntax accepted by the parser,
/// with minimal parentheses under Python/C operator precedence. Constants
/// are printed as signed w-bit values, so the all-ones word prints as "-1",
/// matching the paper's presentation of truth-table columns.
///
/// The printed length of an expression is the paper's "MBA Length" metric
/// (Table 1), so printing must be deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_PRINTER_H
#define MBA_AST_PRINTER_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <string>

namespace mba {

/// Renders \p E as a string parseable by parseExpr.
std::string printExpr(const Context &Ctx, const Expr *E);

} // namespace mba

#endif // MBA_AST_PRINTER_H
