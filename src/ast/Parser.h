//===- ast/Parser.h - Text parser for MBA expressions -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the surface syntax used by the paper and by
/// the public MBA datasets (Python/C operator precedence):
///
///   expr    := xor ('|' xor)*
///   xor     := and ('^' and)*
///   and     := sum ('&' sum)*
///   sum     := product (('+' | '-') product)*
///   product := unary ('*' unary)*
///   unary   := ('-' | '~')* primary
///   primary := NUMBER | IDENT | '(' expr ')'
///
/// NUMBER is a decimal or 0x-prefixed hexadecimal literal; IDENT is
/// [A-Za-z_][A-Za-z0-9_]*. Note that, as in Python and C, '&', '^' and '|'
/// bind *looser* than '+' and '*', so `x&y + 2` parses as `x & (y + 2)`.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_PARSER_H
#define MBA_AST_PARSER_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <string>
#include <string_view>

namespace mba {

/// Result of a parse: either an expression, or an error message with the
/// offset of the offending character.
struct ParseResult {
  const Expr *E = nullptr;   ///< Parsed expression; null on error.
  std::string Error;         ///< Human-readable diagnostic; empty on success.
  size_t ErrorPos = 0;       ///< Byte offset of the error in the input.

  bool ok() const { return E != nullptr; }
};

/// Parses \p Text into an expression over \p Ctx. Variables are created in
/// the context on first mention.
ParseResult parseExpr(Context &Ctx, std::string_view Text);

/// Parses \p Text and aborts with a diagnostic on failure. For tests and
/// internal tables whose inputs are known-valid.
const Expr *parseOrDie(Context &Ctx, std::string_view Text);

} // namespace mba

#endif // MBA_AST_PARSER_H
