//===- ast/Expr.h - MBA expression nodes ------------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed expression nodes for mixed bitwise-arithmetic
/// (MBA) expressions. The operator set is exactly the one the paper studies:
/// the arithmetic operators +, -, *, unary - and the bitwise operators
/// &, |, ^, ~ over fixed-width two's-complement words (Z/2^w).
///
/// Nodes are created only through a Context (see Context.h), which interns
/// them: structurally identical nodes are represented by the same pointer,
/// so pointer equality is structural equality and expressions form DAGs.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_EXPR_H
#define MBA_AST_EXPR_H

#include <cassert>
#include <cstdint>

namespace mba {

class Context;

/// The node kinds of the MBA expression language.
enum class ExprKind : uint8_t {
  Var,   ///< A named bit-vector variable.
  Const, ///< A constant word (stored masked to the context width).
  Not,   ///< Bitwise complement ~a.
  Neg,   ///< Arithmetic negation -a (two's complement).
  Add,   ///< a + b (mod 2^w).
  Sub,   ///< a - b (mod 2^w).
  Mul,   ///< a * b (mod 2^w).
  And,   ///< a & b.
  Or,    ///< a | b.
  Xor    ///< a ^ b.
};

/// Returns true for the binary arithmetic/bitwise operator kinds.
inline bool isBinaryKind(ExprKind K) {
  return K >= ExprKind::Add && K <= ExprKind::Xor;
}

/// Returns true for the unary operator kinds (~, unary -).
inline bool isUnaryKind(ExprKind K) {
  return K == ExprKind::Not || K == ExprKind::Neg;
}

/// Returns true for operators that compute arithmetically (+, -, *, unary -).
inline bool isArithmeticKind(ExprKind K) {
  return K == ExprKind::Neg || K == ExprKind::Add || K == ExprKind::Sub ||
         K == ExprKind::Mul;
}

/// Returns true for the bitwise operators (&, |, ^, ~).
inline bool isBitwiseKind(ExprKind K) {
  return K == ExprKind::Not || K == ExprKind::And || K == ExprKind::Or ||
         K == ExprKind::Xor;
}

/// Returns true for commutative binary operators.
inline bool isCommutativeKind(ExprKind K) {
  return K == ExprKind::Add || K == ExprKind::Mul || K == ExprKind::And ||
         K == ExprKind::Or || K == ExprKind::Xor;
}

/// An immutable expression node. Instances are interned by a Context and
/// referenced by const pointer; two nodes from the same context are
/// structurally equal iff their pointers are equal.
class Expr {
public:
  ExprKind kind() const { return Kind; }

  bool is(ExprKind K) const { return Kind == K; }
  bool isVar() const { return Kind == ExprKind::Var; }
  bool isConst() const { return Kind == ExprKind::Const; }
  bool isLeaf() const { return isVar() || isConst(); }
  bool isBinary() const { return isBinaryKind(Kind); }
  bool isUnary() const { return isUnaryKind(Kind); }

  /// Variable name. Only valid for Var nodes. The string is interned in the
  /// owning context's arena and outlives the node.
  const char *varName() const {
    assert(isVar() && "not a variable");
    return Name;
  }

  /// Dense per-context variable number, assigned in order of first creation.
  unsigned varIndex() const {
    assert(isVar() && "not a variable");
    return Index;
  }

  /// Constant value, masked to the context width. Only valid for Const.
  uint64_t constValue() const {
    assert(isConst() && "not a constant");
    return Value;
  }

  /// Left operand of a binary node, or the sole operand of a unary node.
  const Expr *lhs() const {
    assert(!isLeaf() && "leaf has no operands");
    return LHS;
  }

  /// Right operand. Only valid for binary nodes.
  const Expr *rhs() const {
    assert(isBinary() && "not a binary node");
    return RHS;
  }

  /// Operand of a unary node (~a or -a).
  const Expr *operand() const {
    assert(isUnary() && "not a unary node");
    return LHS;
  }

  /// Number of operands (0 for leaves, 1 for unary, 2 for binary).
  unsigned numOperands() const { return isLeaf() ? 0 : (isUnary() ? 1 : 2); }

  /// Returns the I-th operand.
  const Expr *getOperand(unsigned I) const {
    assert(I < numOperands() && "operand index out of range");
    return I == 0 ? LHS : RHS;
  }

  /// Unchecked operand-slot access for the IR verifier
  /// (analysis/Verifier.h): returns the raw pointer stored in slot \p I
  /// without arity assertions, so malformed nodes can be diagnosed instead
  /// of tripping an assert. Not for general use — prefer lhs()/rhs().
  const Expr *rawOperand(unsigned I) const { return I == 0 ? LHS : RHS; }

private:
  friend class Context;

  // Leaf constructor (Var / Const).
  Expr(ExprKind K, const char *Name, unsigned Index, uint64_t Value)
      : Kind(K), Index(Index), Value(Value), Name(Name), LHS(nullptr),
        RHS(nullptr) {}

  // Operator constructor.
  Expr(ExprKind K, const Expr *L, const Expr *R)
      : Kind(K), Index(0), Value(0), Name(nullptr), LHS(L), RHS(R) {}

  ExprKind Kind;
  unsigned Index;
  uint64_t Value;
  const char *Name;
  const Expr *LHS;
  const Expr *RHS;
};

} // namespace mba

#endif // MBA_AST_EXPR_H
