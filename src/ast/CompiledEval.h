//===- ast/CompiledEval.h - Bytecode-compiled evaluation --------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny register bytecode for batch evaluation of one expression on many
/// inputs. The interpreter in Evaluator.h re-hashes the memo map per call;
/// signature computation (2^t evaluations per expression), the Syntia-style
/// I/O oracle, and randomized equivalence testing all evaluate the same DAG
/// thousands of times, so compiling once and replaying a flat instruction
/// stream is markedly faster.
///
/// Compilation is a post-order walk assigning one virtual register per
/// distinct DAG node (shared subtrees are computed once, like the memoized
/// interpreter).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_COMPILEDEVAL_H
#define MBA_AST_COMPILEDEVAL_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mba {

/// A compiled evaluator for one expression.
class CompiledExpr {
public:
  /// Compiles \p E. The program remains valid as long as the context
  /// lives.
  CompiledExpr(const Context &Ctx, const Expr *E);

  /// Evaluates with variable i (dense context index) bound to
  /// VarValues[i]; missing indices read as 0. Equivalent to
  /// mba::evaluate(Ctx, E, VarValues).
  uint64_t evaluate(std::span<const uint64_t> VarValues) const;

  /// Number of bytecode instructions (= distinct DAG nodes).
  size_t size() const { return Program.size(); }

private:
  enum class Op : uint8_t {
    LoadVar,
    LoadConst,
    Not,
    Neg,
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor
  };

  struct Inst {
    Op Opcode;
    uint32_t A = 0; // source register / variable index
    uint32_t B = 0; // second source register
    uint64_t Imm = 0; // constant payload
  };

  uint64_t Mask;
  std::vector<Inst> Program; // instruction i writes register i
  mutable std::vector<uint64_t> Registers;
};

} // namespace mba

#endif // MBA_AST_COMPILEDEVAL_H
