//===- ast/ExprUtils.cpp - Traversal and rewriting helpers -----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/ExprUtils.h"

#include "support/Cache.h"

#include <algorithm>
#include <cstring>

using namespace mba;

std::vector<const Expr *> mba::collectVariables(const Expr *E) {
  std::vector<const Expr *> Vars;
  std::unordered_set<const Expr *> Seen;
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (N->isVar() && Seen.insert(N).second)
      Vars.push_back(N);
  });
  std::sort(Vars.begin(), Vars.end(), [](const Expr *A, const Expr *B) {
    return std::strcmp(A->varName(), B->varName()) < 0;
  });
  return Vars;
}

bool mba::containsSubExpr(const Expr *E, const Expr *Sub) {
  bool Found = false;
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (N == Sub)
      Found = true;
  });
  return Found;
}

size_t mba::countDagNodes(const Expr *E) {
  size_t Count = 0;
  forEachNodePostOrder(E, [&](const Expr *) { ++Count; });
  return Count;
}

size_t mba::countTreeNodes(const Expr *E) {
  std::unordered_map<const Expr *, size_t> Memo;
  std::function<size_t(const Expr *)> Go = [&](const Expr *N) -> size_t {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    size_t Count = 1;
    for (unsigned I = 0, NumOps = N->numOperands(); I != NumOps; ++I)
      Count += Go(N->getOperand(I));
    if (Count > SIZE_MAX / 2)
      Count = SIZE_MAX / 2;
    Memo.emplace(N, Count);
    return Count;
  };
  return Go(E);
}

void mba::forEachNodePostOrder(const Expr *E,
                               const std::function<void(const Expr *)> &Fn) {
  // Iterative post-order with an explicit stack; expressions can be deep.
  std::unordered_set<const Expr *> Visited;
  std::vector<std::pair<const Expr *, bool>> Stack;
  Stack.push_back({E, false});
  while (!Stack.empty()) {
    auto [N, Expanded] = Stack.back();
    Stack.pop_back();
    if (Expanded) {
      Fn(N);
      continue;
    }
    if (!Visited.insert(N).second)
      continue;
    Stack.push_back({N, true});
    for (unsigned I = 0, NumOps = N->numOperands(); I != NumOps; ++I)
      Stack.push_back({N->getOperand(I), false});
  }
}

const Expr *mba::substitute(
    Context &Ctx, const Expr *E,
    const std::unordered_map<const Expr *, const Expr *> &Map) {
  std::unordered_map<const Expr *, const Expr *> Memo;
  std::function<const Expr *(const Expr *)> Go =
      [&](const Expr *N) -> const Expr * {
    auto MapIt = Map.find(N);
    if (MapIt != Map.end())
      return MapIt->second;
    if (N->isLeaf())
      return N;
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    const Expr *Result;
    if (N->isUnary())
      Result = Ctx.rebuild(N, Go(N->operand()), nullptr);
    else
      Result = Ctx.rebuild(N, Go(N->lhs()), Go(N->rhs()));
    Memo.emplace(N, Result);
    return Result;
  };
  return Go(E);
}

const Expr *mba::rewriteBottomUp(
    Context &Ctx, const Expr *E,
    const std::function<const Expr *(const Expr *)> &Fn) {
  std::unordered_map<const Expr *, const Expr *> Memo;
  std::function<const Expr *(const Expr *)> Go =
      [&](const Expr *N) -> const Expr * {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    const Expr *Rebuilt = N;
    if (N->isUnary())
      Rebuilt = Ctx.rebuild(N, Go(N->operand()), nullptr);
    else if (N->isBinary())
      Rebuilt = Ctx.rebuild(N, Go(N->lhs()), Go(N->rhs()));
    const Expr *Result = Fn(Rebuilt);
    assert(Result && "rewrite callback must return a node");
    Memo.emplace(N, Result);
    return Result;
  };
  return Go(E);
}

uint64_t mba::exprFingerprint(const Expr *E) {
  assert(E && "null expression");
  // Same traversal shape as cloneExpr: iterative post-order with the low
  // pointer bit tagging "operands already pushed".
  std::unordered_map<const Expr *, uint64_t> Memo;
  std::vector<uintptr_t> Stack;
  Stack.push_back((uintptr_t)E);
  while (!Stack.empty()) {
    uintptr_t Top = Stack.back();
    Stack.pop_back();
    const Expr *N = (const Expr *)(Top & ~(uintptr_t)1);
    if (!(Top & 1)) {
      if (!Memo.emplace(N, 0).second)
        continue;
      Stack.push_back(Top | 1);
      for (unsigned I = 0, NumOps = N->numOperands(); I != NumOps; ++I)
        Stack.push_back((uintptr_t)N->getOperand(I));
      continue;
    }
    uint64_t H = hashMix64((uint64_t)N->kind() + 0x517cc1b727220a95ULL);
    switch (N->kind()) {
    case ExprKind::Var:
      H = hashCombine64(H, hashBytes64(N->varName(),
                                       std::strlen(N->varName())));
      break;
    case ExprKind::Const:
      H = hashCombine64(H, N->constValue());
      break;
    default:
      // Operand order matters (Sub is not commutative); hashCombine64 is
      // order-sensitive, so lhs-then-rhs keeps a-b distinct from b-a.
      if (N->isUnary()) {
        H = hashCombine64(H, Memo.at(N->operand()));
      } else {
        H = hashCombine64(H, Memo.at(N->lhs()));
        H = hashCombine64(H, Memo.at(N->rhs()));
      }
      break;
    }
    Memo[N] = H;
  }
  return Memo.at(E);
}

const Expr *mba::cloneExpr(Context &Dst, const Expr *E) {
  assert(E && "null expression");
  // Source-node -> clone; a nullptr value claims a node whose operands are
  // being cloned (acyclicity guarantees it is filled in before any parent
  // needs it). Iterative post-order; the low pointer bit tags "operands
  // already pushed" markers (Expr nodes are at least word-aligned).
  std::unordered_map<const Expr *, const Expr *> Memo;
  std::vector<uintptr_t> Stack;
  Stack.push_back((uintptr_t)E);
  while (!Stack.empty()) {
    uintptr_t Top = Stack.back();
    Stack.pop_back();
    const Expr *N = (const Expr *)(Top & ~(uintptr_t)1);
    if (!(Top & 1)) {
      if (!Memo.emplace(N, nullptr).second)
        continue; // shared subtree already cloned (or claimed below us)
      Stack.push_back(Top | 1);
      for (unsigned I = 0, NumOps = N->numOperands(); I != NumOps; ++I)
        Stack.push_back((uintptr_t)N->getOperand(I));
      continue;
    }
    const Expr *C;
    switch (N->kind()) {
    case ExprKind::Var:
      C = Dst.getVar(N->varName());
      break;
    case ExprKind::Const:
      C = Dst.getConst(N->constValue());
      break;
    default:
      if (N->isUnary())
        C = Dst.getUnary(N->kind(), Memo.at(N->operand()));
      else
        C = Dst.getBinary(N->kind(), Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    }
    Memo[N] = C;
  }
  return Memo.at(E);
}
