//===- ast/Evaluator.cpp - Concrete evaluation ------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"

#include <functional>

using namespace mba;

namespace {

/// Shared evaluation core; \p Lookup maps a Var node to its value.
uint64_t evalImpl(const Context &Ctx, const Expr *E,
                  const std::function<uint64_t(const Expr *)> &Lookup) {
  std::unordered_map<const Expr *, uint64_t> Memo;
  uint64_t Mask = Ctx.mask();
  std::function<uint64_t(const Expr *)> Go = [&](const Expr *N) -> uint64_t {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    uint64_t R = 0;
    switch (N->kind()) {
    case ExprKind::Var:
      R = Lookup(N) & Mask;
      break;
    case ExprKind::Const:
      R = N->constValue();
      break;
    case ExprKind::Not:
      R = ~Go(N->operand()) & Mask;
      break;
    case ExprKind::Neg:
      R = (0 - Go(N->operand())) & Mask;
      break;
    case ExprKind::Add:
      R = (Go(N->lhs()) + Go(N->rhs())) & Mask;
      break;
    case ExprKind::Sub:
      R = (Go(N->lhs()) - Go(N->rhs())) & Mask;
      break;
    case ExprKind::Mul:
      R = (Go(N->lhs()) * Go(N->rhs())) & Mask;
      break;
    case ExprKind::And:
      R = Go(N->lhs()) & Go(N->rhs());
      break;
    case ExprKind::Or:
      R = Go(N->lhs()) | Go(N->rhs());
      break;
    case ExprKind::Xor:
      R = Go(N->lhs()) ^ Go(N->rhs());
      break;
    }
    Memo.emplace(N, R);
    return R;
  };
  return Go(E);
}

} // namespace

uint64_t mba::evaluate(const Context &Ctx, const Expr *E,
                       std::span<const uint64_t> VarValues) {
  return evalImpl(Ctx, E, [&](const Expr *V) -> uint64_t {
    unsigned I = V->varIndex();
    return I < VarValues.size() ? VarValues[I] : 0;
  });
}

uint64_t mba::evaluate(
    const Context &Ctx, const Expr *E,
    const std::unordered_map<const Expr *, uint64_t> &VarValues) {
  return evalImpl(Ctx, E, [&](const Expr *V) -> uint64_t {
    auto It = VarValues.find(V);
    return It == VarValues.end() ? 0 : It->second;
  });
}
