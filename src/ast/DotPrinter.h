//===- ast/DotPrinter.h - Graphviz export of expression DAGs ----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) rendering of expression DAGs, for debugging and for the
/// documentation's architecture figures. Shared subtrees render as shared
/// nodes, making the DAG structure (and the effect of hash-consing)
/// visible.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_DOTPRINTER_H
#define MBA_AST_DOTPRINTER_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <string>

namespace mba {

/// Renders \p E as a DOT digraph named \p GraphName. Operator nodes are
/// ellipses labeled with the operator, variables are boxes, constants are
/// diamonds (printed signed).
std::string toDot(const Context &Ctx, const Expr *E,
                  const std::string &GraphName = "expr");

} // namespace mba

#endif // MBA_AST_DOTPRINTER_H
