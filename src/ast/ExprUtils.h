//===- ast/ExprUtils.h - Traversal and rewriting helpers --------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DAG-aware traversal, variable collection, substitution and structural
/// statistics over MBA expressions. All walks memoize on node pointers so
/// shared subtrees are visited once (expressions are hash-consed DAGs).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AST_EXPRUTILS_H
#define MBA_AST_EXPRUTILS_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mba {

/// Returns the distinct variables of \p E sorted by name (the canonical
/// variable order used for truth tables and signature vectors).
std::vector<const Expr *> collectVariables(const Expr *E);

/// Returns true if \p Sub occurs as a subexpression of \p E (pointer
/// identity; nodes are interned, so this is structural containment).
bool containsSubExpr(const Expr *E, const Expr *Sub);

/// Number of distinct DAG nodes reachable from \p E.
size_t countDagNodes(const Expr *E);

/// Number of tree nodes of \p E (shared subtrees counted once per use).
/// Capped at SIZE_MAX/2 to avoid overflow on adversarially shared DAGs.
size_t countTreeNodes(const Expr *E);

/// Replaces every occurrence of the keys of \p Map in \p E by the mapped
/// values, rebuilding the spine bottom-up. Replacement is non-recursive: the
/// substituted values are not themselves rewritten again.
const Expr *substitute(Context &Ctx, const Expr *E,
                       const std::unordered_map<const Expr *, const Expr *> &Map);

/// Applies \p Fn to every distinct node of \p E in post-order (operands
/// before operators).
void forEachNodePostOrder(const Expr *E,
                          const std::function<void(const Expr *)> &Fn);

/// Rewrites \p E bottom-up: children are rewritten first, the node is rebuilt
/// with the new children, and then \p Fn may replace the rebuilt node. \p Fn
/// returns the (possibly unchanged) replacement.
const Expr *
rewriteBottomUp(Context &Ctx, const Expr *E,
                const std::function<const Expr *(const Expr *)> &Fn);

/// Context-independent 64-bit structural fingerprint of \p E: hashes node
/// kinds, variable names and constant values bottom-up, so two expressions
/// (possibly from different contexts) get the same fingerprint iff they
/// print identically. This is the cache key of the semantic memoization
/// layer (support/Cache.h) — keyed by name/value, never by pointer, so
/// fingerprints are stable across contexts, runs and snapshot reloads.
/// DAG-memoized and iterative like every walk here.
uint64_t exprFingerprint(const Expr *E);

/// Deep-copies \p E (owned by any context of the same width) into \p Dst:
/// variables map by name, constants by value (re-truncated to Dst's width),
/// operators structurally. Interning in \p Dst preserves DAG sharing. This
/// is how the parallel pipeline hands work to per-worker contexts — see the
/// threading model in ast/Context.h. Iterative, so adversarially deep
/// expressions don't overflow the stack.
const Expr *cloneExpr(Context &Dst, const Expr *E);

} // namespace mba

#endif // MBA_AST_EXPRUTILS_H
