//===- ast/DotPrinter.cpp - Graphviz export of expression DAGs ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/DotPrinter.h"

#include "ast/ExprUtils.h"

#include <unordered_map>

using namespace mba;

namespace {

const char *opLabel(ExprKind K) {
  switch (K) {
  case ExprKind::Not:
    return "~";
  case ExprKind::Neg:
    return "neg";
  case ExprKind::Add:
    return "+";
  case ExprKind::Sub:
    return "-";
  case ExprKind::Mul:
    return "*";
  case ExprKind::And:
    return "&";
  case ExprKind::Or:
    return "|";
  case ExprKind::Xor:
    return "^";
  default:
    return "?";
  }
}

} // namespace

std::string mba::toDot(const Context &Ctx, const Expr *E,
                       const std::string &GraphName) {
  std::string Out = "digraph " + GraphName + " {\n";
  Out += "  rankdir=TB;\n";
  std::unordered_map<const Expr *, unsigned> Ids;
  forEachNodePostOrder(E, [&](const Expr *N) {
    unsigned Id = (unsigned)Ids.size();
    Ids.emplace(N, Id);
    std::string Node = "  n" + std::to_string(Id);
    switch (N->kind()) {
    case ExprKind::Var:
      Out += Node + " [shape=box,label=\"" + N->varName() + "\"];\n";
      break;
    case ExprKind::Const:
      Out += Node + " [shape=diamond,label=\"" +
             std::to_string(Ctx.toSigned(N->constValue())) + "\"];\n";
      break;
    default:
      Out += Node + " [label=\"" + opLabel(N->kind()) + "\"];\n";
      break;
    }
    for (unsigned I = 0; I != N->numOperands(); ++I)
      Out += Node + " -> n" + std::to_string(Ids.at(N->getOperand(I))) +
             ";\n";
  });
  Out += "}\n";
  return Out;
}
