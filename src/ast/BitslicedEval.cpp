//===- ast/BitslicedEval.cpp - Bitsliced batch DAG evaluation -------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/BitslicedEval.h"

#include "support/Bitslice.h"

#include <cassert>
#include <cstring>

using namespace mba;

namespace {

/// Minimal open-addressing pointer -> register map. The evaluator is
/// compiled once per computeSignature call on the hot simplifier path, so
/// compilation must stay lean; this avoids the allocation and hashing
/// overhead of unordered_map (a measurable share of the scalar baseline).
class NodeIndexMap {
public:
  static constexpr uint32_t None = 0xFFFFFFFFu;

  NodeIndexMap() : Table(256) {}

  uint32_t get(const Expr *K) const {
    size_t I = probe(K);
    return Table[I].first == K ? Table[I].second : None;
  }

  /// Returns the value already stored for \p K, or inserts \p V and
  /// returns None. One probe for the visited-check + claim of the DFS.
  uint32_t getOrInsert(const Expr *K, uint32_t V) {
    size_t I = probe(K);
    if (Table[I].first == K)
      return Table[I].second;
    Table[I] = {K, V};
    if (++Count * 4 >= Table.size() * 3)
      grow();
    return None;
  }

  void set(const Expr *K, uint32_t V) {
    size_t I = probe(K);
    assert(Table[I].first == K && "set of a key never inserted");
    Table[I].second = V;
  }

private:
  size_t probe(const Expr *K) const {
    uint64_t H = (uint64_t)(uintptr_t)K * 0x9e3779b97f4a7c15ULL;
    size_t M = Table.size() - 1;
    size_t I = (size_t)(H >> 32) & M;
    while (Table[I].first && Table[I].first != K)
      I = (I + 1) & M;
    return I;
  }

  void grow() {
    std::vector<std::pair<const Expr *, uint32_t>> Old = std::move(Table);
    Table.assign(Old.size() * 2, {nullptr, 0});
    for (auto &[K, V] : Old)
      if (K) {
        size_t I = probe(K);
        Table[I] = {K, V};
      }
  }

  std::vector<std::pair<const Expr *, uint32_t>> Table;
  size_t Count = 0;
};

} // namespace

BitslicedExpr::BitslicedExpr(const Context &Ctx, const Expr *E)
    : Ctx(&Ctx), Width(Ctx.width()), Mask(Ctx.mask()) {
  assert(E && "null expression");
  NodeIndexMap Regs;
  constexpr uint32_t Pending = 0xFFFFFFFEu;
  Program.reserve(64);
  // Iterative post-order; the low pointer bit tags "operands already
  // pushed" markers (Expr nodes are at least word-aligned).
  std::vector<uintptr_t> Stack;
  Stack.reserve(64);
  Stack.push_back((uintptr_t)E);
  while (!Stack.empty()) {
    uintptr_t Top = Stack.back();
    Stack.pop_back();
    const Expr *N = (const Expr *)(Top & ~(uintptr_t)1);
    if (!(Top & 1)) {
      if (Regs.getOrInsert(N, Pending) != NodeIndexMap::None)
        continue; // shared subtree already emitted (or queued below us)
      Stack.push_back(Top | 1);
      for (unsigned I = 0, NumOps = N->numOperands(); I != NumOps; ++I)
        Stack.push_back((uintptr_t)N->getOperand(I));
      continue;
    }
    Inst I;
    switch (N->kind()) {
    case ExprKind::Var:
      I.Opcode = Op::LoadVar;
      I.A = N->varIndex();
      break;
    case ExprKind::Const:
      I.Opcode = Op::LoadConst;
      I.Imm = N->constValue();
      break;
    case ExprKind::Not:
    case ExprKind::Neg:
      I.Opcode = N->kind() == ExprKind::Not ? Op::Not : Op::Neg;
      I.A = Regs.get(N->operand());
      break;
    default:
      switch (N->kind()) {
      case ExprKind::Add: I.Opcode = Op::Add; break;
      case ExprKind::Sub: I.Opcode = Op::Sub; break;
      case ExprKind::Mul: I.Opcode = Op::Mul; break;
      case ExprKind::And: I.Opcode = Op::And; break;
      case ExprKind::Or: I.Opcode = Op::Or; break;
      default: I.Opcode = Op::Xor; break;
      }
      I.A = Regs.get(N->lhs());
      I.B = Regs.get(N->rhs());
      break;
    }
    Regs.set(N, (uint32_t)Program.size());
    Program.push_back(I);
  }

  // Liveness-based slot assignment for the wide path (see the header): a
  // register's slot is recycled after its last reader, but a destination
  // never takes a slot freed by its own sources, so no kernel ever runs
  // in place.
  const uint32_t P = (uint32_t)Program.size();
  std::vector<uint32_t> LastUse(P);
  for (uint32_t I = 0; I != P; ++I) {
    LastUse[I] = I;
    const Inst &Ins = Program[I];
    switch (Ins.Opcode) {
    case Op::LoadVar: // Ins.A is a variable index, not a register
    case Op::LoadConst:
      break;
    case Op::Not:
    case Op::Neg:
      LastUse[Ins.A] = I;
      break;
    default:
      LastUse[Ins.A] = I;
      LastUse[Ins.B] = I;
      break;
    }
  }
  if (P)
    LastUse[P - 1] = P; // the root is read by the epilogue
  SlotOf.resize(P);
  std::vector<uint32_t> Free;
  for (uint32_t I = 0; I != P; ++I) {
    if (Free.empty()) {
      SlotOf[I] = NumSlots++;
    } else {
      SlotOf[I] = Free.back();
      Free.pop_back();
    }
    const Inst &Ins = Program[I];
    switch (Ins.Opcode) {
    case Op::LoadVar:
    case Op::LoadConst:
      break;
    case Op::Not:
    case Op::Neg:
      if (LastUse[Ins.A] == I)
        Free.push_back(SlotOf[Ins.A]);
      break;
    default:
      if (LastUse[Ins.A] == I)
        Free.push_back(SlotOf[Ins.A]);
      if (Ins.B != Ins.A && LastUse[Ins.B] == I)
        Free.push_back(SlotOf[Ins.B]);
      break;
    }
  }
}

uint64_t *BitslicedExpr::slot(uint32_t Reg) const {
  return Slots + (size_t)Reg * 64;
}

const uint64_t *BitslicedExpr::slicesOf(uint32_t Reg, uint64_t *Tmp) const {
  switch (RepOf[Reg]) {
  case Rep::Sliced:
    return Slots + (size_t)Reg * 64;
  case Rep::Splat:
    bitslice::sliceBroadcast(Width, Word[Reg], Tmp);
    return Tmp;
  default: // Uniform/Lanes never occur in sliced mode
    for (unsigned B = 0; B != Width; ++B)
      Tmp[B] = Word[Reg];
    return Tmp;
  }
}

const uint64_t *BitslicedExpr::lanesOf(uint32_t Reg, uint64_t *Tmp,
                                       unsigned NumLanes) const {
  switch (RepOf[Reg]) {
  case Rep::Lanes:
    return Slots + (size_t)Reg * 64;
  case Rep::Uniform: {
    uint64_t M = Word[Reg];
    for (unsigned J = 0; J != NumLanes; ++J)
      Tmp[J] = (M >> J & 1) ? Mask : 0;
    return Tmp;
  }
  default: // Splat (Sliced never occurs in lane mode)
    for (unsigned J = 0; J != NumLanes; ++J)
      Tmp[J] = Word[Reg];
    return Tmp;
  }
}

/// Lane mode: values are kept per point. Arithmetic is NumLanes independent
/// word operations per node — vectorizable, no carry ripple, and only the
/// live lanes of a partial block are touched.
void BitslicedExpr::runLanes(unsigned NumLanes) const {
  const unsigned N = NumLanes;
  uint64_t TmpA[64], TmpB[64];
  for (size_t I = 0, P = Program.size(); I != P; ++I) {
    const Inst &Ins = Program[I];
    const uint32_t A = Ins.A, B = Ins.B;
    switch (Ins.Opcode) {
    case Op::LoadVar:
      if (CornerMode) {
        RepOf[I] = Rep::Uniform;
        Word[I] = A < CornerMasks.size() ? CornerMasks[A] : 0;
      } else {
        const uint64_t *Lanes =
            A < LaneInputs.size() ? LaneInputs[A] : nullptr;
        if (!Lanes) {
          RepOf[I] = Rep::Splat;
          Word[I] = 0;
        } else {
          RepOf[I] = Rep::Lanes;
          uint64_t *S = slot((uint32_t)I);
          for (unsigned J = 0; J != N; ++J)
            S[J] = Lanes[J] & Mask;
        }
      }
      break;
    case Op::LoadConst:
      RepOf[I] = Rep::Splat;
      Word[I] = Ins.Imm & Mask;
      break;
    case Op::Not:
      RepOf[I] = RepOf[A];
      if (RepOf[A] == Rep::Splat)
        Word[I] = ~Word[A] & Mask;
      else if (RepOf[A] == Rep::Uniform)
        Word[I] = ~Word[A];
      else {
        const uint64_t *SA = Slots + (size_t)A * 64;
        uint64_t *S = slot((uint32_t)I);
        for (unsigned J = 0; J != N; ++J)
          S[J] = ~SA[J] & Mask;
      }
      break;
    case Op::Neg:
      if (RepOf[A] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (0 - Word[A]) & Mask;
      } else if (RepOf[A] == Rep::Uniform) {
        // Per-lane value 0 or -1; negation gives 0 or 1.
        RepOf[I] = Rep::Lanes;
        uint64_t M = Word[A];
        uint64_t *S = slot((uint32_t)I);
        for (unsigned J = 0; J != N; ++J)
          S[J] = (M >> J) & 1;
      } else {
        RepOf[I] = Rep::Lanes;
        const uint64_t *SA = Slots + (size_t)A * 64;
        uint64_t *S = slot((uint32_t)I);
        for (unsigned J = 0; J != N; ++J)
          S[J] = (0 - SA[J]) & Mask;
      }
      break;
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      Rep RA = RepOf[A], RB = RepOf[B];
      if ((RA == Rep::Splat && RB == Rep::Splat) ||
          (RA == Rep::Uniform && RB == Rep::Uniform)) {
        // Splat stays Splat; Uniform stays Uniform — the corner-evaluation
        // fast path, one word op per bitwise node for the whole block.
        RepOf[I] = RA;
        Word[I] = Ins.Opcode == Op::And   ? Word[A] & Word[B]
                  : Ins.Opcode == Op::Or ? Word[A] | Word[B]
                                          : Word[A] ^ Word[B];
      } else {
        RepOf[I] = Rep::Lanes;
        const uint64_t *SA = lanesOf(A, TmpA, N);
        const uint64_t *SB = lanesOf(B, TmpB, N);
        uint64_t *S = slot((uint32_t)I);
        if (Ins.Opcode == Op::And)
          for (unsigned J = 0; J != N; ++J)
            S[J] = SA[J] & SB[J];
        else if (Ins.Opcode == Op::Or)
          for (unsigned J = 0; J != N; ++J)
            S[J] = SA[J] | SB[J];
        else
          for (unsigned J = 0; J != N; ++J)
            S[J] = SA[J] ^ SB[J];
      }
      break;
    }
    case Op::Add:
    case Op::Sub: {
      Rep RA = RepOf[A], RB = RepOf[B];
      bool IsAdd = Ins.Opcode == Op::Add;
      if (RA == Rep::Splat && RB == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (IsAdd ? Word[A] + Word[B] : Word[A] - Word[B]) & Mask;
      } else {
        RepOf[I] = Rep::Lanes;
        const uint64_t *SA = lanesOf(A, TmpA, N);
        const uint64_t *SB = lanesOf(B, TmpB, N);
        uint64_t *S = slot((uint32_t)I);
        if (IsAdd)
          for (unsigned J = 0; J != N; ++J)
            S[J] = (SA[J] + SB[J]) & Mask;
        else
          for (unsigned J = 0; J != N; ++J)
            S[J] = (SA[J] - SB[J]) & Mask;
      }
      break;
    }
    case Op::Mul: {
      Rep RA = RepOf[A], RB = RepOf[B];
      if (RA == Rep::Splat && RB == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (Word[A] * Word[B]) & Mask;
      } else if ((RA == Rep::Splat && RB == Rep::Uniform) ||
                 (RA == Rep::Uniform && RB == Rep::Splat)) {
        // Coefficient times bitwise term (the backbone of linear MBA):
        // lanes valued -1 select -C, lanes valued 0 select 0.
        uint64_t C = RA == Rep::Splat ? Word[A] : Word[B];
        uint64_t M = RA == Rep::Splat ? Word[B] : Word[A];
        uint64_t NC = (0 - C) & Mask;
        RepOf[I] = Rep::Lanes;
        uint64_t *S = slot((uint32_t)I);
        for (unsigned J = 0; J != N; ++J)
          S[J] = (M >> J & 1) ? NC : 0;
      } else if (RA == Rep::Uniform && RB == Rep::Uniform) {
        // (-1) * (-1) = 1, anything else 0.
        RepOf[I] = Rep::Lanes;
        uint64_t M = Word[A] & Word[B];
        uint64_t *S = slot((uint32_t)I);
        for (unsigned J = 0; J != N; ++J)
          S[J] = (M >> J) & 1;
      } else {
        RepOf[I] = Rep::Lanes;
        const uint64_t *SA = lanesOf(A, TmpA, N);
        const uint64_t *SB = lanesOf(B, TmpB, N);
        uint64_t *S = slot((uint32_t)I);
        for (unsigned J = 0; J != N; ++J)
          S[J] = (SA[J] * SB[J]) & Mask;
      }
      break;
    }
    }
  }
}

/// Sliced mode (narrow widths, point inputs): values are transposed, w slice
/// words cover all 64 points, so a full block costs w ops per bitwise node
/// no matter how many points are live. Registers here are Splat or Sliced
/// only (Uniform arises from corner inputs, which always use lane mode).
void BitslicedExpr::runSliced(unsigned NumLanes) const {
  const unsigned W = Width;
  uint64_t TmpA[64], TmpB[64];
  for (size_t I = 0, P = Program.size(); I != P; ++I) {
    const Inst &Ins = Program[I];
    const uint32_t A = Ins.A, B = Ins.B;
    switch (Ins.Opcode) {
    case Op::LoadVar: {
      const uint64_t *Lanes =
          A < LaneInputs.size() ? LaneInputs[A] : nullptr;
      if (!Lanes) {
        RepOf[I] = Rep::Splat;
        Word[I] = 0;
      } else {
        RepOf[I] = Rep::Sliced;
        bitslice::lanesToSlices(Lanes, NumLanes, W, slot((uint32_t)I));
      }
      break;
    }
    case Op::LoadConst:
      RepOf[I] = Rep::Splat;
      Word[I] = Ins.Imm & Mask;
      break;
    case Op::Not:
      if (RepOf[A] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = ~Word[A] & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        bitslice::sliceNot(W, Slots + (size_t)A * 64,
                           slot((uint32_t)I));
      }
      break;
    case Op::Neg:
      if (RepOf[A] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (0 - Word[A]) & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        bitslice::sliceNeg(W, Slots + (size_t)A * 64,
                           slot((uint32_t)I));
      }
      break;
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      if (RepOf[A] == Rep::Splat && RepOf[B] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = Ins.Opcode == Op::And   ? Word[A] & Word[B]
                  : Ins.Opcode == Op::Or ? Word[A] | Word[B]
                                          : Word[A] ^ Word[B];
      } else {
        RepOf[I] = Rep::Sliced;
        const uint64_t *SA = slicesOf(A, TmpA);
        const uint64_t *SB = slicesOf(B, TmpB);
        uint64_t *S = slot((uint32_t)I);
        if (Ins.Opcode == Op::And)
          bitslice::sliceAnd(W, SA, SB, S);
        else if (Ins.Opcode == Op::Or)
          bitslice::sliceOr(W, SA, SB, S);
        else
          bitslice::sliceXor(W, SA, SB, S);
      }
      break;
    }
    case Op::Add:
    case Op::Sub: {
      bool IsAdd = Ins.Opcode == Op::Add;
      if (RepOf[A] == Rep::Splat && RepOf[B] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (IsAdd ? Word[A] + Word[B] : Word[A] - Word[B]) & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        const uint64_t *SA = slicesOf(A, TmpA);
        const uint64_t *SB = slicesOf(B, TmpB);
        uint64_t *S = slot((uint32_t)I);
        if (IsAdd)
          bitslice::sliceAdd(W, SA, SB, S);
        else
          bitslice::sliceSub(W, SA, SB, S);
      }
      break;
    }
    case Op::Mul: {
      if (RepOf[A] == Rep::Splat && RepOf[B] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (Word[A] * Word[B]) & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        const uint64_t *SA = slicesOf(A, TmpA);
        const uint64_t *SB = slicesOf(B, TmpB);
        bitslice::sliceMul(W, SA, SB, slot((uint32_t)I));
      }
      break;
    }
    }
  }
}

void BitslicedExpr::run(unsigned NumLanes, uint64_t *Out) const {
  assert(NumLanes <= bitslice::LanesPerBlock && "block too large");
  if (Program.empty()) {
    for (unsigned J = 0; J != NumLanes; ++J)
      Out[J] = 0;
    return;
  }
  // Carve this run's register file out of the context's shared scratch:
  // P 64-word slots, P mask/splat words, and P representation tags.
  size_t P = Program.size();
  uint64_t *S = Ctx->evalScratch(P * 65 + (P + 7) / 8);
  Slots = S;
  Word = S + P * 64;
  RepOf = reinterpret_cast<Rep *>(Word + P);
  // Corner inputs are uniform (the whole point); point inputs use slices
  // only below the width where w slice ops beat 64 lane ops.
  if (CornerMode || Width > bitslice::kSchoolbookMulMaxWidth)
    runLanes(NumLanes);
  else
    runSliced(NumLanes);

  // Expand the root register into per-lane values.
  uint32_t Root = (uint32_t)Program.size() - 1;
  switch (RepOf[Root]) {
  case Rep::Uniform: {
    uint64_t M = Word[Root];
    for (unsigned J = 0; J != NumLanes; ++J)
      Out[J] = (M >> J & 1) ? Mask : 0;
    break;
  }
  case Rep::Splat:
    for (unsigned J = 0; J != NumLanes; ++J)
      Out[J] = Word[Root];
    break;
  case Rep::Lanes: {
    const uint64_t *S = Slots + (size_t)Root * 64;
    for (unsigned J = 0; J != NumLanes; ++J)
      Out[J] = S[J];
    break;
  }
  case Rep::Sliced:
    bitslice::slicesToLanes(Slots + (size_t)Root * 64, Width, NumLanes,
                            Out);
    break;
  }
}

//===----------------------------------------------------------------------===//
// Wide-block path: > 64 lanes per block on the runtime-dispatched SIMD
// back end. Same representation lattice as run()/runLanes()/runSliced();
// every per-lane loop is a WideKernels call compiled with the back end's
// ISA flags. A Uniform register's mask occupies the first BlockWords words
// of its (64 * BlockWords)-word slot; Word[] carries Splat values only.
//===----------------------------------------------------------------------===//

uint64_t *BitslicedExpr::wideSlot(uint32_t Reg) const {
  return Slots + (size_t)SlotOf[Reg] * BlockWords * 64;
}

const uint64_t *BitslicedExpr::wideSlicesOf(const bitslice::WideKernels &WK,
                                            uint32_t Reg,
                                            uint64_t *Tmp) const {
  switch (RepOf[Reg]) {
  case Rep::Sliced:
    return wideSlot(Reg);
  default: // Splat (Uniform/Lanes never occur in sliced mode)
    WK.SliceBroadcast(Width, Word[Reg], Tmp);
    return Tmp;
  }
}

const uint64_t *BitslicedExpr::wideLanesOf(const bitslice::WideKernels &WK,
                                           uint32_t Reg, uint64_t *Tmp,
                                           unsigned NumLanes) const {
  switch (RepOf[Reg]) {
  case Rep::Lanes:
    return LanePtr[Reg];
  case Rep::Uniform:
    WK.LaneSelect(wideSlot(Reg), Mask, Tmp, NumLanes);
    return Tmp;
  default: // Splat (Sliced never occurs in lane mode)
    WK.LaneFill(Word[Reg], Tmp, NumLanes);
    return Tmp;
  }
}

void BitslicedExpr::runWideLanes(const bitslice::WideKernels &WK,
                                 unsigned NumLanes,
                                 uint64_t *RootOut) const {
  const unsigned N = NumLanes;
  const unsigned W = WK.Words;
  const size_t P = Program.size();
  uint64_t TmpA[bitslice::MaxWideLanes], TmpB[bitslice::MaxWideLanes];
  // Lanes-representation destination for instruction I: the root writes
  // straight into the caller's output buffer, everything else into its
  // slot. Every branch producing Rep::Lanes records the destination in
  // LanePtr[I].
  auto Dst = [&](size_t I) {
    return I + 1 == P && RootOut ? RootOut : wideSlot((uint32_t)I);
  };
  for (size_t I = 0; I != P; ++I) {
    const Inst &Ins = Program[I];
    const uint32_t A = Ins.A, B = Ins.B;
    switch (Ins.Opcode) {
    case Op::LoadVar:
      if (CornerMode) {
        RepOf[I] = Rep::Uniform;
        uint64_t *M = wideSlot((uint32_t)I);
        size_t Base = (size_t)A * CornerMaskWords;
        for (unsigned K = 0; K != W; ++K)
          M[K] = K < CornerMaskWords && Base + K < CornerMasks.size()
                     ? CornerMasks[Base + K]
                     : 0;
      } else {
        const uint64_t *Lanes =
            A < LaneInputs.size() ? LaneInputs[A] : nullptr;
        if (!Lanes) {
          RepOf[I] = Rep::Splat;
          Word[I] = 0;
        } else if (Mask == ~0ULL) {
          // Full width: masking is the identity, so alias the caller's
          // input array instead of copying a block (zero-copy load).
          RepOf[I] = Rep::Lanes;
          LanePtr[I] = Lanes;
        } else {
          RepOf[I] = Rep::Lanes;
          uint64_t *D = Dst(I);
          WK.LaneCopyM(Lanes, D, N, Mask);
          LanePtr[I] = D;
        }
      }
      break;
    case Op::LoadConst:
      RepOf[I] = Rep::Splat;
      Word[I] = Ins.Imm & Mask;
      break;
    case Op::Not:
      RepOf[I] = RepOf[A];
      if (RepOf[A] == Rep::Splat)
        Word[I] = ~Word[A] & Mask;
      else if (RepOf[A] == Rep::Uniform) {
        const uint64_t *MA = wideSlot(A);
        uint64_t *M = wideSlot((uint32_t)I);
        for (unsigned K = 0; K != W; ++K)
          M[K] = ~MA[K];
      } else {
        uint64_t *D = Dst(I);
        WK.LaneNotM(LanePtr[A], D, N, Mask);
        LanePtr[I] = D;
      }
      break;
    case Op::Neg:
      if (RepOf[A] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (0 - Word[A]) & Mask;
      } else if (RepOf[A] == Rep::Uniform) {
        // Per-lane value 0 or -1; negation gives 0 or 1.
        RepOf[I] = Rep::Lanes;
        uint64_t *D = Dst(I);
        WK.LaneSelect(wideSlot(A), 1, D, N);
        LanePtr[I] = D;
      } else {
        RepOf[I] = Rep::Lanes;
        uint64_t *D = Dst(I);
        WK.LaneNegM(LanePtr[A], D, N, Mask);
        LanePtr[I] = D;
      }
      break;
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      Rep RA = RepOf[A], RB = RepOf[B];
      if (RA == Rep::Splat && RB == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = Ins.Opcode == Op::And   ? Word[A] & Word[B]
                  : Ins.Opcode == Op::Or ? Word[A] | Word[B]
                                          : Word[A] ^ Word[B];
      } else if (RA == Rep::Uniform && RB == Rep::Uniform) {
        // The corner-evaluation fast path: W word ops for the whole
        // wide block.
        RepOf[I] = Rep::Uniform;
        const uint64_t *MA = wideSlot(A), *MB = wideSlot(B);
        uint64_t *M = wideSlot((uint32_t)I);
        if (Ins.Opcode == Op::And)
          for (unsigned K = 0; K != W; ++K)
            M[K] = MA[K] & MB[K];
        else if (Ins.Opcode == Op::Or)
          for (unsigned K = 0; K != W; ++K)
            M[K] = MA[K] | MB[K];
        else
          for (unsigned K = 0; K != W; ++K)
            M[K] = MA[K] ^ MB[K];
      } else if (RA == Rep::Splat || RB == Rep::Splat) {
        // One splat operand folds into the kernel: a single fused pass
        // over the other side (Lanes), or a two-constant select over its
        // mask (Uniform, per-lane value Mask or 0).
        uint64_t C = Word[RA == Rep::Splat ? A : B];
        uint32_t O = RA == Rep::Splat ? B : A;
        RepOf[I] = Rep::Lanes;
        uint64_t *D = Dst(I);
        if (RepOf[O] == Rep::Lanes) {
          if (Ins.Opcode == Op::And)
            WK.LaneAndS(LanePtr[O], C, D, N);
          else if (Ins.Opcode == Op::Or)
            WK.LaneOrS(LanePtr[O], C, D, N);
          else
            WK.LaneXorS(LanePtr[O], C, D, N);
        } else {
          uint64_t V1 = Ins.Opcode == Op::And   ? C
                        : Ins.Opcode == Op::Or ? Mask
                                                : (Mask ^ C);
          uint64_t V0 = Ins.Opcode == Op::And ? 0 : C;
          WK.LaneSelect2(wideSlot(O), V1, V0, D, N);
        }
        LanePtr[I] = D;
      } else {
        RepOf[I] = Rep::Lanes;
        const uint64_t *SA = wideLanesOf(WK, A, TmpA, N);
        const uint64_t *SB = wideLanesOf(WK, B, TmpB, N);
        uint64_t *D = Dst(I);
        if (Ins.Opcode == Op::And)
          WK.LaneAnd(SA, SB, D, N);
        else if (Ins.Opcode == Op::Or)
          WK.LaneOr(SA, SB, D, N);
        else
          WK.LaneXor(SA, SB, D, N);
        LanePtr[I] = D;
      }
      break;
    }
    case Op::Add:
    case Op::Sub: {
      Rep RA = RepOf[A], RB = RepOf[B];
      bool IsAdd = Ins.Opcode == Op::Add;
      if (RA == Rep::Splat && RB == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (IsAdd ? Word[A] + Word[B] : Word[A] - Word[B]) & Mask;
      } else if (RA == Rep::Splat || RB == Rep::Splat) {
        // Constant term: fused add/sub against the other side.
        uint64_t C = Word[RA == Rep::Splat ? A : B];
        uint32_t O = RA == Rep::Splat ? B : A;
        RepOf[I] = Rep::Lanes;
        uint64_t *D = Dst(I);
        if (RepOf[O] == Rep::Lanes) {
          if (IsAdd)
            WK.LaneAddSM(LanePtr[O], C, D, N, Mask);
          else if (RB == Rep::Splat)
            WK.LaneSubSM(LanePtr[O], C, D, N, Mask); // A - C
          else
            WK.LaneRSubSM(LanePtr[O], C, D, N, Mask); // C - B
        } else {
          // Uniform other side: per-lane value Mask or 0.
          uint64_t V1, V0;
          if (IsAdd) {
            V1 = (Mask + C) & Mask;
            V0 = C;
          } else if (RB == Rep::Splat) { // A(Uniform) - C
            V1 = (Mask - C) & Mask;
            V0 = (0 - C) & Mask;
          } else { // C - B(Uniform)
            V1 = (C - Mask) & Mask;
            V0 = C;
          }
          WK.LaneSelect2(wideSlot(O), V1, V0, D, N);
        }
        LanePtr[I] = D;
      } else {
        RepOf[I] = Rep::Lanes;
        const uint64_t *SA = wideLanesOf(WK, A, TmpA, N);
        const uint64_t *SB = wideLanesOf(WK, B, TmpB, N);
        uint64_t *D = Dst(I);
        if (IsAdd)
          WK.LaneAddM(SA, SB, D, N, Mask);
        else
          WK.LaneSubM(SA, SB, D, N, Mask);
        LanePtr[I] = D;
      }
      break;
    }
    case Op::Mul: {
      Rep RA = RepOf[A], RB = RepOf[B];
      if (RA == Rep::Splat && RB == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (Word[A] * Word[B]) & Mask;
      } else if ((RA == Rep::Splat && RB == Rep::Uniform) ||
                 (RA == Rep::Uniform && RB == Rep::Splat)) {
        // Coefficient times bitwise term: one select per lane.
        uint64_t C = RA == Rep::Splat ? Word[A] : Word[B];
        const uint64_t *M = wideSlot(RA == Rep::Splat ? B : A);
        uint64_t NC = (0 - C) & Mask;
        RepOf[I] = Rep::Lanes;
        uint64_t *D = Dst(I);
        WK.LaneSelect(M, NC, D, N);
        LanePtr[I] = D;
      } else if (RA == Rep::Splat || RB == Rep::Splat) {
        // Coefficient times a Lanes value: one fused multiply pass.
        uint64_t C = Word[RA == Rep::Splat ? A : B];
        uint32_t O = RA == Rep::Splat ? B : A;
        RepOf[I] = Rep::Lanes;
        uint64_t *D = Dst(I);
        WK.LaneMulSM(LanePtr[O], C, D, N, Mask);
        LanePtr[I] = D;
      } else if (RA == Rep::Uniform && RB == Rep::Uniform) {
        // (-1) * (-1) = 1, anything else 0.
        RepOf[I] = Rep::Lanes;
        const uint64_t *MA = wideSlot(A), *MB = wideSlot(B);
        uint64_t MW[bitslice::MaxWideWords];
        for (unsigned K = 0; K != W; ++K)
          MW[K] = MA[K] & MB[K];
        uint64_t *D = Dst(I);
        WK.LaneSelect(MW, 1, D, N);
        LanePtr[I] = D;
      } else {
        RepOf[I] = Rep::Lanes;
        const uint64_t *SA = wideLanesOf(WK, A, TmpA, N);
        const uint64_t *SB = wideLanesOf(WK, B, TmpB, N);
        uint64_t *D = Dst(I);
        WK.LaneMulM(SA, SB, D, N, Mask);
        LanePtr[I] = D;
      }
      break;
    }
    }
  }
}

void BitslicedExpr::runWideSliced(const bitslice::WideKernels &WK,
                                  unsigned NumLanes) const {
  const unsigned W = Width;
  uint64_t TmpA[bitslice::MaxWideLanes], TmpB[bitslice::MaxWideLanes];
  for (size_t I = 0, P = Program.size(); I != P; ++I) {
    const Inst &Ins = Program[I];
    const uint32_t A = Ins.A, B = Ins.B;
    switch (Ins.Opcode) {
    case Op::LoadVar: {
      const uint64_t *Lanes =
          A < LaneInputs.size() ? LaneInputs[A] : nullptr;
      if (!Lanes) {
        RepOf[I] = Rep::Splat;
        Word[I] = 0;
      } else {
        RepOf[I] = Rep::Sliced;
        WK.LanesToSlices(Lanes, NumLanes, W, wideSlot((uint32_t)I));
      }
      break;
    }
    case Op::LoadConst:
      RepOf[I] = Rep::Splat;
      Word[I] = Ins.Imm & Mask;
      break;
    case Op::Not:
      if (RepOf[A] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = ~Word[A] & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        WK.SliceNot(W, wideSlot(A), wideSlot((uint32_t)I));
      }
      break;
    case Op::Neg:
      if (RepOf[A] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (0 - Word[A]) & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        WK.SliceNeg(W, wideSlot(A), wideSlot((uint32_t)I));
      }
      break;
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      if (RepOf[A] == Rep::Splat && RepOf[B] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = Ins.Opcode == Op::And   ? Word[A] & Word[B]
                  : Ins.Opcode == Op::Or ? Word[A] | Word[B]
                                          : Word[A] ^ Word[B];
      } else {
        RepOf[I] = Rep::Sliced;
        const uint64_t *SA = wideSlicesOf(WK, A, TmpA);
        const uint64_t *SB = wideSlicesOf(WK, B, TmpB);
        uint64_t *S = wideSlot((uint32_t)I);
        if (Ins.Opcode == Op::And)
          WK.SliceAnd(W, SA, SB, S);
        else if (Ins.Opcode == Op::Or)
          WK.SliceOr(W, SA, SB, S);
        else
          WK.SliceXor(W, SA, SB, S);
      }
      break;
    }
    case Op::Add:
    case Op::Sub: {
      bool IsAdd = Ins.Opcode == Op::Add;
      if (RepOf[A] == Rep::Splat && RepOf[B] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (IsAdd ? Word[A] + Word[B] : Word[A] - Word[B]) & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        const uint64_t *SA = wideSlicesOf(WK, A, TmpA);
        const uint64_t *SB = wideSlicesOf(WK, B, TmpB);
        uint64_t *S = wideSlot((uint32_t)I);
        if (IsAdd)
          WK.SliceAdd(W, SA, SB, S);
        else
          WK.SliceSub(W, SA, SB, S);
      }
      break;
    }
    case Op::Mul: {
      if (RepOf[A] == Rep::Splat && RepOf[B] == Rep::Splat) {
        RepOf[I] = Rep::Splat;
        Word[I] = (Word[A] * Word[B]) & Mask;
      } else {
        RepOf[I] = Rep::Sliced;
        const uint64_t *SA = wideSlicesOf(WK, A, TmpA);
        const uint64_t *SB = wideSlicesOf(WK, B, TmpB);
        WK.SliceMul(W, SA, SB, wideSlot((uint32_t)I));
      }
      break;
    }
    }
  }
}

void BitslicedExpr::runWide(const bitslice::WideKernels &WK,
                            unsigned NumLanes, uint64_t *Out) const {
  assert(NumLanes <= WK.Words * 64 && "block too large for back end");
  if (Program.empty()) {
    for (unsigned J = 0; J != NumLanes; ++J)
      Out[J] = 0;
    return;
  }
  // Same carving as run(), but with (64 * Words)-word slots, only NumSlots
  // of them (liveness reuse), and a lane-data pointer per register.
  size_t P = Program.size();
  size_t BW = (size_t)WK.Words * 64;
  uint64_t *S = Ctx->evalScratch((size_t)NumSlots * BW + 2 * P + (P + 7) / 8);
  Slots = S;
  Word = S + (size_t)NumSlots * BW;
  LanePtr = reinterpret_cast<const uint64_t **>(Word + P);
  RepOf = reinterpret_cast<Rep *>(Word + 2 * P);
  BlockWords = WK.Words;
  if (CornerMode || Width > bitslice::kSchoolbookMulMaxWidth)
    runWideLanes(WK, NumLanes, Out);
  else
    runWideSliced(WK, NumLanes);

  uint32_t Root = (uint32_t)Program.size() - 1;
  switch (RepOf[Root]) {
  case Rep::Uniform:
    WK.LaneSelect(wideSlot(Root), Mask, Out, NumLanes);
    break;
  case Rep::Splat:
    WK.LaneFill(Word[Root], Out, NumLanes);
    break;
  case Rep::Lanes:
    // Usually written to Out directly by runWideLanes; the copy only
    // remains for a zero-copy variable root aliasing the caller's input.
    if (LanePtr[Root] != Out)
      std::memcpy(Out, LanePtr[Root], NumLanes * sizeof(uint64_t));
    break;
  case Rep::Sliced:
    WK.SlicesToLanes(wideSlot(Root), Width, NumLanes, Out);
    break;
  }
}

void BitslicedExpr::evaluateCorners(std::span<const uint64_t> VarMasks,
                                    unsigned NumLanes, uint64_t *Out) const {
  CornerMode = true;
  CornerMasks = VarMasks;
  CornerMaskWords = 1;
  LaneInputs = {};
  run(NumLanes, Out);
}

void BitslicedExpr::evaluateCornersWide(std::span<const uint64_t> VarMaskWords,
                                        unsigned NumLanes,
                                        uint64_t *Out) const {
  const bitslice::WideKernels &WK = bitslice::activeKernels();
  CornerMode = true;
  CornerMasks = VarMaskWords;
  CornerMaskWords = WK.Words;
  LaneInputs = {};
  runWide(WK, NumLanes, Out);
}

void BitslicedExpr::evaluateBlock(std::span<const uint64_t *const> VarLanes,
                                  unsigned NumLanes, uint64_t *Out) const {
  CornerMode = false;
  CornerMasks = {};
  LaneInputs = VarLanes;
  // Point-mode input layout is identical either way. Small blocks keep the
  // original in-line path on the scalar back end (the guaranteed
  // fallback); any SIMD back end takes every block through its kernels —
  // lane counts below a full wide block still vectorize (a 64-lane pass
  // is 16 ymm / 8 zmm iterations), and the per-register working set stays
  // L1-resident.
  const bitslice::WideKernels &WK = bitslice::activeKernels();
  if (NumLanes <= bitslice::LanesPerBlock && WK.IsaTag == bitslice::Isa::Scalar)
    run(NumLanes, Out);
  else
    runWide(WK, NumLanes, Out);
}

std::vector<uint64_t>
BitslicedExpr::evaluatePoints(std::span<const uint64_t *const> VarLanes,
                              size_t NumPoints) const {
  std::vector<uint64_t> Out(NumPoints);
  std::vector<const uint64_t *> Block(VarLanes.size());
  size_t BlockLanes = wideLanes();
  for (size_t Base = 0; Base < NumPoints; Base += BlockLanes) {
    unsigned N = (unsigned)std::min<size_t>(BlockLanes, NumPoints - Base);
    for (size_t V = 0; V != VarLanes.size(); ++V)
      Block[V] = VarLanes[V] ? VarLanes[V] + Base : nullptr;
    evaluateBlock(Block, N, Out.data() + Base);
  }
  return Out;
}
