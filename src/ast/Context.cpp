//===- ast/Context.cpp - Expression interning context ----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/BitslicedEval.h"

using namespace mba;

Context::Context(unsigned Width) : Width(Width) {
  assert(Width >= 1 && Width <= 64 && "width must be in [1, 64]");
  Mask = Width == 64 ? ~0ULL : ((1ULL << Width) - 1);
}

// Out of line so BitslicedExpr is complete where the cache is destroyed.
Context::~Context() = default;

const BitslicedExpr &Context::getBitsliced(const Expr *E) const {
  assertOwnedByCurrentThread();
  std::unique_ptr<BitslicedExpr> &Slot = BitslicedCache[E];
  if (!Slot)
    Slot = std::make_unique<BitslicedExpr>(*this, E);
  return *Slot;
}

uint64_t *Context::evalScratch(size_t Words) const {
  assertOwnedByCurrentThread();
  if (EvalScratch.size() < Words)
    EvalScratch.resize(Words);
  return EvalScratch.data();
}

const Expr *Context::getVar(std::string_view Name) {
  assert(!Name.empty() && "variable name must be non-empty");
  assertOwnedByCurrentThread();
  auto It = VarsByName.find(Name);
  if (It != VarsByName.end())
    return It->second;

  const char *Interned = Alloc.copyString(Name.data(), Name.size());
  unsigned Index = (unsigned)Vars.size();
  const Expr *E = Alloc.create<Expr>(Expr(ExprKind::Var, Interned, Index, 0));
  ++NumNodes;
  Vars.push_back(E);
  VarsByName.emplace(std::string(Name), E);
  return E;
}

const Expr *Context::getConst(uint64_t Value) {
  assertOwnedByCurrentThread();
  Value &= Mask;
  NodeKey Key{ExprKind::Const, nullptr, nullptr, Value};
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  const Expr *E =
      Alloc.create<Expr>(Expr(ExprKind::Const, nullptr, 0, Value));
  ++NumNodes;
  Interned.emplace(Key, E);
  return E;
}

const Expr *Context::getUnary(ExprKind K, const Expr *A) {
  assertOwnedByCurrentThread();
  assert(isUnaryKind(K) && "not a unary kind");
  assert(A && "null operand");
  NodeKey Key{K, A, nullptr, 0};
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  const Expr *E = Alloc.create<Expr>(Expr(K, A, nullptr));
  ++NumNodes;
  Interned.emplace(Key, E);
  return E;
}

const Expr *Context::getBinary(ExprKind K, const Expr *A, const Expr *B) {
  assertOwnedByCurrentThread();
  assert(isBinaryKind(K) && "not a binary kind");
  assert(A && B && "null operand");
  NodeKey Key{K, A, B, 0};
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  const Expr *E = Alloc.create<Expr>(Expr(K, A, B));
  ++NumNodes;
  Interned.emplace(Key, E);
  return E;
}

const Expr *Context::findInterned(ExprKind K, const Expr *L, const Expr *R,
                                  uint64_t Aux) const {
  // Latent gap surfaced by the owner-thread capability annotations: this
  // read-only lookup touched the interning tables without the guardrail
  // (reads are unsafe too — the class is not safe for concurrent readers).
  assertOwnedByCurrentThread();
  if (K == ExprKind::Var)
    return Aux < Vars.size() ? Vars[Aux] : nullptr;
  NodeKey Key{K, L, R, Aux};
  auto It = Interned.find(Key);
  return It != Interned.end() ? It->second : nullptr;
}

void Context::forEachOwnedNode(
    const std::function<void(const Expr *)> &Fn) const {
  assertOwnedByCurrentThread(); // same latent gap as findInterned
  for (const Expr *V : Vars)
    Fn(V);
  for (const auto &[Key, Node] : Interned)
    Fn(Node);
}

const Expr *Context::rebuild(const Expr *E, const Expr *NewLHS,
                             const Expr *NewRHS) {
  if (E->isLeaf())
    return E;
  if (E->isUnary()) {
    assert(NewLHS && "unary rebuild needs an operand");
    if (NewLHS == E->operand())
      return E;
    return getUnary(E->kind(), NewLHS);
  }
  assert(NewLHS && NewRHS && "binary rebuild needs both operands");
  if (NewLHS == E->lhs() && NewRHS == E->rhs())
    return E;
  return getBinary(E->kind(), NewLHS, NewRHS);
}
