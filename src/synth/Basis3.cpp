//===- synth/Basis3.cpp - Shipped 3-variable bitwise basis table ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Basis3.h"

#include "linalg/TruthTable.h"

#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

using namespace mba;
using namespace mba::synth;

namespace {

/// One closure entry: the cheapest known RPN program for a truth function.
struct Entry {
  std::string Rpn;
  unsigned Cost = ~0u;
};

/// Exhaustive closure over ~, &, |, ^ from the variables and constants,
/// minimizing operator count; ties break on shorter then lexicographically
/// smaller RPN so the table content is a pure function of NumVars (the
/// shipped file must regenerate byte-identically).
std::vector<Entry> buildClosure(unsigned NumVars) {
  const unsigned Rows = 1u << NumVars;
  const uint32_t Full = (1u << Rows) - 1;
  std::vector<Entry> Table((size_t)1 << Rows);

  auto Relax = [&](uint32_t F, unsigned Cost, std::string Rpn) {
    Entry &E = Table[F];
    if (Cost < E.Cost ||
        (Cost == E.Cost && (Rpn.size() < E.Rpn.size() ||
                            (Rpn.size() == E.Rpn.size() && Rpn < E.Rpn)))) {
      E.Cost = Cost;
      E.Rpn = std::move(Rpn);
    }
  };

  Relax(0, 0, "0");
  Relax(Full, 0, "1");
  for (unsigned V = 0; V != NumVars; ++V) {
    uint32_t Column = 0;
    for (unsigned Row = 0; Row != Rows; ++Row)
      if (truthBit(Row, V, NumVars))
        Column |= 1u << Row;
    Relax(Column, 0, std::string(1, (char)('a' + V)));
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Entry> Snapshot = Table;
    for (uint32_t F = 0; F <= Full + 0u && F < Snapshot.size(); ++F) {
      const Entry &EF = Snapshot[F];
      if (EF.Cost == ~0u)
        continue;
      Relax(Full & ~F, EF.Cost + 1, EF.Rpn + "~");
      for (uint32_t G = 0; G < Snapshot.size(); ++G) {
        const Entry &EG = Snapshot[G];
        if (EG.Cost == ~0u)
          continue;
        unsigned C = EF.Cost + EG.Cost + 1;
        Relax(F & G, C, EF.Rpn + EG.Rpn + "&");
        Relax(F | G, C, EF.Rpn + EG.Rpn + "|");
        Relax(F ^ G, C, EF.Rpn + EG.Rpn + "^");
      }
    }
    for (size_t F = 0; F != Table.size(); ++F)
      if (Table[F].Cost != Snapshot[F].Cost || Table[F].Rpn != Snapshot[F].Rpn)
        Changed = true;
  }
  return Table;
}

/// Evaluates an RPN program over truth-table bit masks; returns false on a
/// malformed program (unknown token or stack imbalance).
bool evalRpnTruth(std::string_view Rpn, unsigned NumVars, uint32_t &Out) {
  const unsigned Rows = 1u << NumVars;
  const uint32_t Full = (1u << Rows) - 1;
  uint32_t Stack[16];
  unsigned Top = 0;
  for (char C : Rpn) {
    if (C >= 'a' && C < (char)('a' + NumVars)) {
      if (Top == 16)
        return false;
      unsigned V = (unsigned)(C - 'a');
      uint32_t Column = 0;
      for (unsigned Row = 0; Row != Rows; ++Row)
        if (truthBit(Row, V, NumVars))
          Column |= 1u << Row;
      Stack[Top++] = Column;
    } else if (C == '0' || C == '1') {
      if (Top == 16)
        return false;
      Stack[Top++] = C == '0' ? 0 : Full;
    } else if (C == '~') {
      if (!Top)
        return false;
      Stack[Top - 1] = Full & ~Stack[Top - 1];
    } else if (C == '&' || C == '|' || C == '^') {
      if (Top < 2)
        return false;
      uint32_t B = Stack[--Top];
      uint32_t &A = Stack[Top - 1];
      A = C == '&' ? (A & B) : C == '|' ? (A | B) : (A ^ B);
    } else {
      return false;
    }
  }
  if (Top != 1)
    return false;
  Out = Stack[0];
  return true;
}

constexpr char kMagic[] = "MBA-BASIS3 v1 vars=3 terms=256";

struct Basis3State {
  std::vector<Entry> Tables[MaxBasisVars + 1]; // index = NumVars
  Basis3LoadInfo Info;
};

/// Attempts to replace the builtin 3-var closure by the shipped file;
/// returns true and fills Table on success, else records the reason.
bool loadBasis3File(const std::string &Path, std::vector<Entry> &Table,
                    std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open file";
    return false;
  }
  std::string Line;
  if (!std::getline(In, Line) || Line != kMagic) {
    Error = "bad magic/version line";
    return false;
  }
  std::vector<Entry> Loaded(256);
  unsigned Count = 0;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    unsigned Truth;
    std::string Rpn;
    if (!(LS >> std::hex >> Truth >> Rpn) || Truth > 255) {
      Error = "malformed entry line: " + Line;
      return false;
    }
    // Integrity: the entry's program must realize exactly the truth
    // function it is filed under.
    uint32_t Got;
    if (!evalRpnTruth(Rpn, 3, Got) || Got != Truth) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "entry %02x fails truth check", Truth);
      Error = Buf;
      return false;
    }
    if (Loaded[Truth].Cost != ~0u) {
      Error = "duplicate entry";
      return false;
    }
    unsigned Cost = 0;
    for (char C : Rpn)
      Cost += C == '~' || C == '&' || C == '|' || C == '^';
    Loaded[Truth] = {std::move(Rpn), Cost};
    ++Count;
  }
  if (Count != 256) {
    Error = "term count mismatch (" + std::to_string(Count) + " of 256)";
    return false;
  }
  Table = std::move(Loaded);
  return true;
}

const Basis3State &state() {
  static Basis3State S = [] {
    Basis3State St;
    for (unsigned T = 1; T <= MaxBasisVars; ++T)
      St.Tables[T] = buildClosure(T);
    // The 3-var tier prefers the shipped data file (startup integrity
    // check; builtin fallback keeps behaviour identical when it is
    // missing or rejected).
    const char *Env = std::getenv("MBA_BASIS3_TABLE");
    St.Info.Path = Env ? Env :
#ifdef MBA_BASIS3_DEFAULT_PATH
                       MBA_BASIS3_DEFAULT_PATH;
#else
                       "data/basis3.tbl";
#endif
    std::vector<Entry> FromFile;
    if (loadBasis3File(St.Info.Path, FromFile, St.Info.Error)) {
      St.Tables[3] = std::move(FromFile);
      St.Info.FromFile = true;
    }
    return St;
  }();
  return S;
}

const Entry &entryFor(unsigned NumVars, uint32_t Truth) {
  assert(NumVars >= 1 && NumVars <= MaxBasisVars && "unsupported arity");
  const std::vector<Entry> &T = state().Tables[NumVars];
  assert(Truth < T.size() && "truth index out of range");
  return T[Truth];
}

} // namespace

const Basis3LoadInfo &mba::synth::basis3LoadInfo() { return state().Info; }

unsigned mba::synth::bitwiseCost(unsigned NumVars, uint32_t Truth) {
  return entryFor(NumVars, Truth).Cost;
}

std::string_view mba::synth::bitwiseRpn(unsigned NumVars, uint32_t Truth) {
  return entryFor(NumVars, Truth).Rpn;
}

const Expr *mba::synth::bitwiseFromTruth(Context &Ctx,
                                         std::span<const Expr *const> Vars,
                                         uint32_t Truth) {
  std::string_view Rpn = bitwiseRpn((unsigned)Vars.size(), Truth);
  const Expr *Stack[16];
  unsigned Top = 0;
  for (char C : Rpn) {
    if (C >= 'a' && C < (char)('a' + Vars.size()))
      Stack[Top++] = Vars[(size_t)(C - 'a')];
    else if (C == '0')
      Stack[Top++] = Ctx.getZero();
    else if (C == '1')
      Stack[Top++] = Ctx.getAllOnes();
    else if (C == '~')
      Stack[Top - 1] = Ctx.getNot(Stack[Top - 1]);
    else {
      const Expr *B = Stack[--Top];
      const Expr *A = Stack[Top - 1];
      Stack[Top - 1] = C == '&'   ? Ctx.getAnd(A, B)
                       : C == '|' ? Ctx.getOr(A, B)
                                  : Ctx.getXor(A, B);
    }
  }
  assert(Top == 1 && "validated RPN cannot be malformed");
  return Stack[0];
}

std::string mba::synth::generateBasis3Table() {
  std::vector<Entry> Table = buildClosure(3);
  std::string Out = kMagic;
  Out += "\n# truth(hex) rpn — minimal ops; tokens: a b c 0 1 ~ & | ^\n";
  for (unsigned F = 0; F != 256; ++F) {
    char Buf[8];
    std::snprintf(Buf, sizeof(Buf), "%02x ", F);
    Out += Buf;
    Out += Table[F].Rpn;
    Out += '\n';
  }
  return Out;
}
