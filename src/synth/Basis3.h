//===- synth/Basis3.h - Shipped 3-variable bitwise basis table -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 3-variable analogue of the paper's shipped 2-variable basis table
/// (Table 5): for each of the 256 truth functions of three variables, the
/// minimal bitwise realization, stored as a versioned data file
/// (data/basis3.tbl) generated offline by the synthesizer's closure and
/// loaded once at startup.
///
/// Entries are postfix (RPN) programs over single-character tokens —
/// `a b c` for variable positions 0..2, `0`/`1` for the constants zero and
/// all-ones, and the operators `~ & | ^` — so loading needs no expression
/// parser and validation is a 30-line stack machine. The startup integrity
/// check (same spirit as the MBACACHE snapshot guards) verifies the magic
/// line, the declared variable/term counts, and that every entry's truth
/// table equals its index; any mismatch falls back to the builtin closure,
/// which computes identical content in-process, so a missing or corrupt
/// file can never change results — only cold-start cost.
///
/// The term bank and synthesizer consume this table two ways: cost ranking
/// (operator count per truth function, context-free) and expression
/// construction (RPN replay against a Context). Tables for 1 and 2
/// variables are always served by the builtin closure; only the 3-variable
/// table ships as data.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SYNTH_BASIS3_H
#define MBA_SYNTH_BASIS3_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <span>
#include <string>

namespace mba::synth {

/// Maximum variable count the basis tables cover (truth functions are
/// indexed by 2^2^T, so 3 is the last practical tier).
constexpr unsigned MaxBasisVars = 3;

/// Where the 3-variable table was sourced from, for diagnostics and tests.
struct Basis3LoadInfo {
  bool FromFile = false; ///< loaded and validated from the data file
  std::string Path;      ///< path probed (even on fallback)
  std::string Error;     ///< why the file was rejected (empty when loaded)
};

/// Load state of the shipped table (the load happens once, lazily).
const Basis3LoadInfo &basis3LoadInfo();

/// Minimal operator count realizing truth function \p Truth over
/// \p NumVars variables (1..MaxBasisVars). Context-free; the term bank
/// ranks candidates with this.
unsigned bitwiseCost(unsigned NumVars, uint32_t Truth);

/// The RPN program of the minimal realization (see file comment for the
/// token alphabet). Valid for the process lifetime.
std::string_view bitwiseRpn(unsigned NumVars, uint32_t Truth);

/// Builds the minimal bitwise expression over \p Vars whose truth column
/// is \p Truth (bit k = value on truth-table row k, rows ordered by
/// linalg/TruthTable.h's truthBit). |Vars| must be 1..MaxBasisVars.
const Expr *bitwiseFromTruth(Context &Ctx, std::span<const Expr *const> Vars,
                             uint32_t Truth);

/// Serializes the full 3-variable table in the shipped file format
/// (deterministic: regenerating always produces identical bytes). Used by
/// tools/gen-basis3 to (re)create data/basis3.tbl.
std::string generateBasis3Table();

} // namespace mba::synth

#endif // MBA_SYNTH_BASIS3_H
