//===- synth/Synthesizer.cpp - Enumerative MBA synthesizer ----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/BitslicedEval.h"
#include "ast/ExprUtils.h"
#include "poly/PolyExpr.h"
#include "support/Bitslice.h"
#include "support/Cache.h"
#include "support/RNG.h"
#include "support/Stopwatch.h"
#include "synth/Basis3.h"
#include "synth/TermBank.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <vector>

using namespace mba;
using namespace mba::synth;

namespace {

/// Process-wide memo of query semantics -> recipe. Values are tiny PODs;
/// hits must (and do) re-validate against the live target, so a collision
/// degrades to a wasted rebuild, never a wrong result.
ShardedCache<uint64_t> &recipeCache() {
  static ShardedCache<uint64_t> C(1 << 14);
  return C;
}

/// A Recipe is packed into one cache word: kind (2 bits) and the two truth
/// columns; coefficients and constant are re-derived from the live corner
/// values, which the key already covers.
uint64_t packRecipe(uint8_t K, uint32_t T1, uint32_t T2) {
  return (uint64_t)K | ((uint64_t)T1 << 2) | ((uint64_t)T2 << 34);
}

/// Semantic key of one query: everything the match depends on.
uint64_t queryKey(unsigned Width, unsigned NumVars,
                  std::span<const uint64_t> Corners,
                  std::span<const uint64_t> Samples) {
  uint64_t H = hashMix64(0x53594e544853ULL ^ ((uint64_t)Width << 8 | NumVars));
  for (uint64_t V : Corners)
    H = hashCombine64(H, V);
  for (uint64_t V : Samples)
    H = hashCombine64(H, V);
  return H;
}

} // namespace

Synthesizer::Synthesizer(Context &Ctx, SynthOptions Opts)
    : Ctx(Ctx), Opts(Opts) {
  this->Opts.MaxVars = std::min(this->Opts.MaxVars, MaxBasisVars);
}

Synthesizer::~Synthesizer() = default;

const Expr *Synthesizer::build(const Recipe &R,
                               std::span<const Expr *const> Vars) const {
  switch (R.K) {
  case Recipe::None:
    return nullptr;
  case Recipe::Const:
    return Ctx.getConst(R.C);
  case Recipe::Single:
    return buildLinearCombination(
        Ctx, {{R.A1, bitwiseFromTruth(Ctx, Vars, R.T1)}}, R.C);
  case Recipe::Pair:
    return buildLinearCombination(Ctx,
                                  {{R.A1, bitwiseFromTruth(Ctx, Vars, R.T1)},
                                   {R.A2, bitwiseFromTruth(Ctx, Vars, R.T2)}},
                                  R.C);
  }
  return nullptr;
}

bool Synthesizer::agrees(const Recipe &R, std::span<const uint64_t> Corners,
                         std::span<const uint64_t> Samples,
                         const uint64_t *Minterms) const {
  const uint64_t Mask = Ctx.mask();
  const size_t N = Samples.size();
  // Corners: a bitwise term contributes 0 or all-ones (-1), so row r's
  // expected value is C minus the coefficients of the terms whose truth
  // bit r is set.
  for (size_t Row = 0; Row != Corners.size(); ++Row) {
    uint64_t Expected = R.C;
    if (R.K != Recipe::Const) {
      if ((R.T1 >> Row) & 1)
        Expected -= R.A1;
      if (R.K == Recipe::Pair && ((R.T2 >> Row) & 1))
        Expected -= R.A2;
    }
    if (Corners[Row] != (Expected & Mask))
      return false;
  }
  // Samples, early-exit on first mismatch.
  for (size_t J = 0; J != N; ++J) {
    uint64_t V = R.C;
    if (R.K != Recipe::Const) {
      V += R.A1 * termValue(Minterms, N, R.T1, J);
      if (R.K == Recipe::Pair)
        V += R.A2 * termValue(Minterms, N, R.T2, J);
    }
    if (Samples[J] != (V & Mask))
      return false;
  }
  return true;
}

bool Synthesizer::verify(const Expr *E, const Expr *Candidate) {
  if (!Opts.Verify)
    return true;
  if (!Checker)
    Checker = makeStagedChecker(Ctx, makeAigChecker(/*Incremental=*/true));
  Stopwatch Timer;
  CheckResult R = Checker->check(Ctx, E, Candidate, Opts.VerifyTimeoutSeconds);
  Stats.VerifySeconds += Timer.seconds();
  // Timeout is rejection: only a proof installs a candidate.
  return R.Outcome == Verdict::Equivalent;
}

const Expr *Synthesizer::synthesize(const Expr *E) {
  ++Stats.Queries;
  std::vector<const Expr *> Vars = collectVariables(E);
  const unsigned T = (unsigned)Vars.size();
  if (T == 0 || T > Opts.MaxVars) {
    ++Stats.Unsupported;
    return nullptr;
  }
  const unsigned Rows = 1u << T;
  const uint64_t Mask = Ctx.mask();

  // Target semantics: the 2^t truth-table corners (raw values — unlike
  // computeSignature's negated convention) ...
  const BitslicedExpr &CE = Ctx.getBitsliced(E);
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  std::vector<uint64_t> VarMasks(MaxIndex + 1, 0);
  for (unsigned I = 0; I != T; ++I)
    VarMasks[Vars[I]->varIndex()] = bitslice::cornerMask(T - 1 - I, 0);
  uint64_t Corners[1u << MaxBasisVars];
  CE.evaluateCorners(VarMasks, Rows, Corners);

  // ... plus a deterministic random batch through the SIMD wide engine.
  // The seed depends only on (width, arity), so equal-semantics targets
  // sample identically and the memo key below is truly semantic.
  const unsigned N = Opts.NumSamples;
  RNG Rng(hashCombine64(hashMix64(0x53594e544853ULL + Ctx.width()), T));
  std::vector<uint64_t> Inputs((size_t)T * N);
  for (unsigned J = 0; J != N; ++J)
    for (unsigned I = 0; I != T; ++I)
      Inputs[(size_t)I * N + J] = Rng.next() & Mask;
  std::vector<const uint64_t *> LanePtrs(MaxIndex + 1, nullptr);
  const uint64_t *VarVals[MaxBasisVars];
  for (unsigned I = 0; I != T; ++I) {
    VarVals[I] = Inputs.data() + (size_t)I * N;
    LanePtrs[Vars[I]->varIndex()] = VarVals[I];
  }
  std::vector<uint64_t> Samples = CE.evaluatePoints(LanePtrs, N);

  // Minterm value arrays: after this, every bank candidate evaluates in
  // O(popcount) word ORs per point with no expression construction.
  std::vector<uint64_t> Minterms((size_t)Rows * N);
  mintermValues({VarVals, T}, T, N, Mask, Minterms.data());

  const uint64_t Key =
      queryKey(Ctx.width(), T, {Corners, Rows}, Samples);
  const uint32_t Full = (1u << Rows) - 1;
  uint64_t Packed;
  if (recipeCache().lookup(Key, Packed)) {
    ++Stats.CacheHits;
    Recipe R;
    R.K = (Recipe::Kind)(Packed & 3);
    if (R.K == Recipe::None)
      return nullptr;
    R.T1 = (uint32_t)((Packed >> 2) & 0xFFFFFFFFu);
    R.T2 = (uint32_t)(Packed >> 34);
    // Re-derive the coefficients from the live corners, then re-check and
    // re-prove: the memo is an accelerator, not an oracle. A collision can
    // hand us out-of-range or degenerate truths — treated exactly like a
    // failed re-check (fall through to the full search).
    bool Valid = true;
    if (R.K == Recipe::Const) {
      R.C = Corners[0];
    } else if (R.K == Recipe::Single) {
      Valid = R.T1 >= 1 && R.T1 < Full;
      if (Valid) {
        R.C = Corners[(unsigned)std::countr_one(R.T1)];  // first off-row
        R.A1 = (R.C - Corners[(unsigned)std::countr_zero(R.T1)]) & Mask;
        Valid = R.A1 != 0;
      }
    } else {
      uint32_t Only1 = R.T1 & ~R.T2, Only2 = R.T2 & ~R.T1;
      uint32_t R00 = (R.T1 | R.T2) < Full ? ~(R.T1 | R.T2) & Full : 0;
      Valid = R.T1 >= 1 && R.T1 <= Full && R.T2 >= 1 && R.T2 <= Full &&
              Only1 && Only2 && R00;
      if (Valid) {
        R.C = Corners[(unsigned)std::countr_zero(R00)];
        R.A1 = (R.C - Corners[(unsigned)std::countr_zero(Only1)]) & Mask;
        R.A2 = (R.C - Corners[(unsigned)std::countr_zero(Only2)]) & Mask;
        Valid = R.A1 != 0 && R.A2 != 0;
      }
    }
    if (Valid && agrees(R, {Corners, Rows}, Samples, Minterms.data())) {
      const Expr *Candidate = build(R, Vars);
      if (Candidate && verify(E, Candidate)) {
        ++Stats.Installed;
        return Candidate;
      }
      ++Stats.VerifyRejected;
      return nullptr;
    }
    // Collision (semantics differ from the recipe's origin): fall through
    // to a fresh search, which overwrites the entry.
  }

  Recipe Found;

  // Shape 1: a constant.
  bool AllConst = std::all_of(Corners + 1, Corners + Rows,
                              [&](uint64_t V) { return V == Corners[0]; }) &&
                  std::all_of(Samples.begin(), Samples.end(),
                              [&](uint64_t V) { return V == Corners[0]; });
  if (AllConst) {
    Found.K = Recipe::Const;
    Found.C = Corners[0];
  }

  std::span<const BankTerm> Bank = termBank(T);

  // Shape 2: a*f + c. The coefficients are read off two corners — f is 0
  // on an off-row (value c) and all-ones on an on-row (value c - a) — and
  // the remaining corners + samples filter.
  if (Found.K == Recipe::None) {
    for (const BankTerm &BT : Bank) {
      unsigned On = (unsigned)std::countr_zero(BT.Truth);
      unsigned Off = (unsigned)std::countr_one(BT.Truth);
      Recipe R;
      R.K = Recipe::Single;
      R.T1 = BT.Truth;
      R.C = Corners[Off];
      R.A1 = (R.C - Corners[On]) & Mask;
      if (!R.A1)
        continue; // degenerate: a constant, handled above
      if (agrees(R, {Corners, Rows}, Samples, Minterms.data())) {
        Found = R;
        break;
      }
    }
  }

  // Shape 3: a1*f1 + a2*f2 + c, scanned in rank order so the first match
  // is the cheapest. Pairs must expose all three corner classes (both
  // terms 0; only f1; only f2) to read the coefficients off — complement
  // pairs have no both-0 row and are exactly the single-term shapes with
  // a constant folded in, already covered above.
  if (Found.K == Recipe::None && T >= 2) {
    size_t Scanned = 0;
    for (size_t I = 0;
         I != Bank.size() && Found.K == Recipe::None &&
         Scanned < Opts.MaxPairCandidates;
         ++I) {
      for (size_t J = I + 1;
           J != Bank.size() && Scanned < Opts.MaxPairCandidates; ++J) {
        ++Scanned;
        uint32_t T1 = Bank[I].Truth, T2 = Bank[J].Truth;
        uint32_t Only1 = T1 & ~T2, Only2 = T2 & ~T1;
        uint32_t R00 = ~(T1 | T2) & Full;
        if (!Only1 || !Only2 || !R00)
          continue;
        Recipe R;
        R.K = Recipe::Pair;
        R.T1 = T1;
        R.T2 = T2;
        R.C = Corners[(unsigned)std::countr_zero(R00)];
        R.A1 = (R.C - Corners[(unsigned)std::countr_zero(Only1)]) & Mask;
        R.A2 = (R.C - Corners[(unsigned)std::countr_zero(Only2)]) & Mask;
        if (!R.A1 || !R.A2)
          continue; // a single-term (or constant) shape in disguise
        if (agrees(R, {Corners, Rows}, Samples, Minterms.data())) {
          Found = R;
          break;
        }
      }
    }
  }

  if (Found.K == Recipe::None) {
    recipeCache().insert(Key, packRecipe(Recipe::None, 0, 0));
    return nullptr;
  }
  ++Stats.Matched;
  const Expr *Candidate = build(Found, Vars);
  if (!verify(E, Candidate)) {
    ++Stats.VerifyRejected;
    // Memoize the failure too: an equal-semantics retry would fail the
    // same proof.
    recipeCache().insert(Key, packRecipe(Recipe::None, 0, 0));
    return nullptr;
  }
  recipeCache().insert(Key, packRecipe(Found.K, Found.T1, Found.T2));
  ++Stats.Installed;
  return Candidate;
}

std::function<const Expr *(Context &, const Expr *)>
Synthesizer::fallbackHook() {
  return [this](Context &C, const Expr *E) -> const Expr * {
    if (&C != &Ctx)
      return nullptr; // bound to one context; see header
    return synthesize(E);
  };
}
