//===- synth/Synthesizer.h - Enumerative MBA synthesizer -------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An enumerative fallback for the non-polynomial residue the signature
/// pipeline cannot reduce (the simplifier's NonPolynomial path can only
/// abstract; it never discovers that an opaque mess *is* `a*(x|~z) + c`).
/// The synthesizer samples the target — its 2^t truth-table corners plus a
/// deterministic batch of random points through the SIMD bitsliced
/// evaluator — then scans the complexity-ranked term bank (synth/TermBank.h)
/// for linear shapes over one or two bitwise terms whose values agree
/// everywhere:
///
///   c        |  a*f(x..) + c  |  a1*f1(x..) + a2*f2(x..) + c
///
/// Coefficients are not searched: at the corners a bitwise term is 0 or
/// all-ones, so a and c fall out of two corner reads and the remaining
/// corners + samples act as a filter with early-exit on first mismatch.
/// Agreement on samples is necessary but not sufficient, so a candidate is
/// only ever *installed* after the staged equivalence checker (static
/// prover + AIG/incremental SAT) proves it — Timeout is rejection, never
/// trust. The result is sound by construction: the synthesizer can fail to
/// improve, but cannot miscompile.
///
/// Query results (including "no match") are memoized process-wide in a
/// ShardedCache keyed on the sampled semantics (width, arity, corner and
/// sample values); hits replay the recipe but still re-run the agreement
/// check and proof, so a hash collision can cost time, never soundness.
///
/// MBASolver integration: SimplifyOptions::SynthFallback (fallbackHook())
/// runs the synthesizer on each simplified non-poly residue, installing the
/// result only when pickBetter judges it an improvement.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SYNTH_SYNTHESIZER_H
#define MBA_SYNTH_SYNTHESIZER_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "solvers/EquivalenceChecker.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace mba::synth {

/// Tuning knobs of one synthesizer instance.
struct SynthOptions {
  /// Maximum target arity (clamped to MaxBasisVars; the bank is
  /// exponential in 2^t).
  unsigned MaxVars = 3;

  /// Random sample points drawn per query (on top of the 2^t corners).
  unsigned NumSamples = 128;

  /// Cap on two-term candidate pairs scanned per query (the pair space is
  /// ~2^15 at three variables; the cap bounds worst-case latency).
  size_t MaxPairCandidates = 32768;

  /// Prove every candidate with the staged checker before returning it.
  /// Disabling is for measurement only (bench/table_synth's ablation
  /// column) — never for installation into the simplifier.
  bool Verify = true;

  /// Budget for one verification query.
  double VerifyTimeoutSeconds = 5.0;
};

/// Cumulative statistics across synthesize() calls.
struct SynthStats {
  uint64_t Queries = 0;        ///< synthesize() calls
  uint64_t Unsupported = 0;    ///< arity 0 or above MaxVars
  uint64_t CacheHits = 0;      ///< semantic-memo hits (either polarity)
  uint64_t Matched = 0;        ///< candidate agreed on corners + samples
  uint64_t VerifyRejected = 0; ///< matched but not proved (incl. Timeout)
  uint64_t Installed = 0;      ///< proved and returned
  double VerifySeconds = 0;    ///< wall-clock inside the staged checker
};

/// The enumerative term-bank synthesizer. Holds the context reference, the
/// lazily-built staged checker, and statistics; one instance per context
/// (evaluation borrows the context's scratch — the usual one-context-per-
/// thread rule applies).
class Synthesizer {
public:
  explicit Synthesizer(Context &Ctx, SynthOptions Opts = SynthOptions());
  ~Synthesizer();

  /// Attempts to express \p E as one of the bank shapes. Returns the
  /// proved replacement, or null when no candidate matched (or survived
  /// verification). Never returns an unproved expression while
  /// Opts.Verify is set.
  const Expr *synthesize(const Expr *E);

  const SynthStats &stats() const { return Stats; }

  /// Adapter for SimplifyOptions::SynthFallback. The returned hook is
  /// bound to this instance and its context: called with any other
  /// context it declines (returns null) rather than evaluating against
  /// the wrong width/scratch.
  std::function<const Expr *(Context &, const Expr *)> fallbackHook();

private:
  /// A reconstructible match: enough to rebuild the candidate expression
  /// over any variable vector of the right arity. Kind::None memoizes
  /// exhausted searches.
  struct Recipe {
    enum Kind : uint8_t { None, Const, Single, Pair } K = None;
    uint32_t T1 = 0, T2 = 0; ///< bank truth columns
    uint64_t A1 = 0, A2 = 0; ///< coefficients
    uint64_t C = 0;          ///< constant term
  };

  const Expr *build(const Recipe &R,
                    std::span<const Expr *const> Vars) const;
  bool agrees(const Recipe &R, std::span<const uint64_t> Corners,
              std::span<const uint64_t> Samples,
              const uint64_t *Minterms) const;
  bool verify(const Expr *E, const Expr *Candidate);

  Context &Ctx;
  SynthOptions Opts;
  SynthStats Stats;
  std::unique_ptr<EquivalenceChecker> Checker; // lazily constructed
};

} // namespace mba::synth

#endif // MBA_SYNTH_SYNTHESIZER_H
