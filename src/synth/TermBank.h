//===- synth/TermBank.h - Complexity-ranked bitwise term bank --*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The enumerative synthesizer's candidate space: every non-constant truth
/// function of up to MaxBasisVars variables, ranked by the operator count
/// of its minimal bitwise realization (synth/Basis3.h). Cheap candidates
/// are tried first, so the first match is also the simplest one the bank
/// can express — the enumeration order *is* the cost model.
///
/// Candidate evaluation is factored through minterms: for truth row r,
/// Minterm_r(x) is all-ones exactly on the bit positions whose variable
/// bits match row r, so any bank term's bitwise value at a point is the OR
/// of its truth rows' minterm values. The bank precomputes the 2^t minterm
/// value arrays once per target (t * 2^t word ops per point), after which
/// every one of the ~2^2^t candidates costs popcount(truth) ORs per point —
/// no per-candidate expression construction or DAG evaluation. This is
/// what makes wide-batch matching against the sampled signature affordable.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SYNTH_TERMBANK_H
#define MBA_SYNTH_TERMBANK_H

#include <cstdint>
#include <span>

namespace mba::synth {

/// One candidate bitwise function.
struct BankTerm {
  uint32_t Truth; ///< truth column (bit r = value on row r)
  uint8_t Cost;   ///< operator count of the minimal realization
};

/// The ranked bank for \p NumVars variables (1..MaxBasisVars): all
/// 2^2^NumVars - 2 non-constant truth functions, sorted by Cost then Truth
/// (deterministic enumeration order). Built once per arity, process-wide.
std::span<const BankTerm> termBank(unsigned NumVars);

/// Fills \p Minterms (2^NumVars rows of \p NumPoints words, row-major) with
/// the minterm indicator values: Minterms[r * NumPoints + j] has exactly
/// the bits where, for every variable position i, bit i of point j's value
/// VarValues[i][j] equals truth row r's bit for variable i. Values are
/// masked to \p Mask.
void mintermValues(std::span<const uint64_t *const> VarValues,
                   unsigned NumVars, size_t NumPoints, uint64_t Mask,
                   uint64_t *Minterms);

/// Bitwise value of the term with truth column \p Truth at point \p J: the
/// OR of its rows' minterm values. O(popcount(Truth)) words.
inline uint64_t termValue(const uint64_t *Minterms, size_t NumPoints,
                          uint32_t Truth, size_t J) {
  uint64_t V = 0;
  for (unsigned R = 0; Truth; ++R, Truth >>= 1)
    if (Truth & 1)
      V |= Minterms[(size_t)R * NumPoints + J];
  return V;
}

} // namespace mba::synth

#endif // MBA_SYNTH_TERMBANK_H
