//===- synth/TermBank.cpp - Complexity-ranked bitwise term bank -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/TermBank.h"

#include "synth/Basis3.h"
#include "linalg/TruthTable.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace mba;
using namespace mba::synth;

std::span<const BankTerm> mba::synth::termBank(unsigned NumVars) {
  assert(NumVars >= 1 && NumVars <= MaxBasisVars && "unsupported arity");
  struct AllBanks {
    std::vector<BankTerm> B[MaxBasisVars + 1]; // index = NumVars
  };
  static const AllBanks Banks = [] {
    AllBanks A;
    for (unsigned T = 1; T <= MaxBasisVars; ++T) {
      const uint32_t Full = (1u << (1u << T)) - 1;
      std::vector<BankTerm> &Bank = A.B[T];
      Bank.reserve(Full - 1);
      for (uint32_t F = 1; F != Full; ++F)
        Bank.push_back({F, (uint8_t)bitwiseCost(T, F)});
      std::stable_sort(Bank.begin(), Bank.end(),
                       [](const BankTerm &X, const BankTerm &Y) {
                         return X.Cost != Y.Cost ? X.Cost < Y.Cost
                                                 : X.Truth < Y.Truth;
                       });
    }
    return A;
  }();
  return Banks.B[NumVars];
}

void mba::synth::mintermValues(std::span<const uint64_t *const> VarValues,
                               unsigned NumVars, size_t NumPoints,
                               uint64_t Mask, uint64_t *Minterms) {
  assert(VarValues.size() >= NumVars && "missing variable value arrays");
  const unsigned Rows = 1u << NumVars;
  for (unsigned R = 0; R != Rows; ++R) {
    uint64_t *Out = Minterms + (size_t)R * NumPoints;
    const uint64_t *V0 = VarValues[0];
    if (truthBit(R, 0, NumVars))
      for (size_t J = 0; J != NumPoints; ++J)
        Out[J] = V0[J] & Mask;
    else
      for (size_t J = 0; J != NumPoints; ++J)
        Out[J] = ~V0[J] & Mask;
    for (unsigned I = 1; I != NumVars; ++I) {
      const uint64_t *VI = VarValues[I];
      if (truthBit(R, I, NumVars))
        for (size_t J = 0; J != NumPoints; ++J)
          Out[J] &= VI[J];
      else
        for (size_t J = 0; J != NumPoints; ++J)
          Out[J] &= ~VI[J];
    }
  }
}
