//===- solvers/EquivalenceChecker.h - Solver backends -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform solver interface the study harness drives (Sections 3 and
/// 6): given an MBA identity equation LHS == RHS, a backend must decide
/// equivalence within a timeout. Three backends reproduce the paper's
/// solver matrix:
///
///  * **Z3** — the real solver via its C++ API (enabled when libz3 is
///    present).
///  * **BlastBV** — the in-tree bit-blasting CDCL solver, plain encoding.
///  * **BlastBV+RW** — the same with structural rewriting.
///
/// The last two substitute for STP and Boolector (unavailable offline; see
/// DESIGN.md). All backends answer the same query the paper poses to
/// solvers: `solve(lhs != rhs)` — UNSAT means the identity holds.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SOLVERS_EQUIVALENCECHECKER_H
#define MBA_SOLVERS_EQUIVALENCECHECKER_H

#include "analysis/Prover.h"
#include "ast/Context.h"
#include "ast/Expr.h"
#include "support/Cache.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mba {

/// Outcome of one equivalence query.
enum class Verdict : uint8_t {
  Equivalent,    ///< lhs != rhs refuted (UNSAT)
  NotEquivalent, ///< witness found (SAT)
  Timeout        ///< budget exhausted (the paper's "O" outcome)
};

const char *verdictName(Verdict V);

/// One query's result with its wall-clock cost.
struct CheckResult {
  Verdict Outcome = Verdict::Timeout;
  double Seconds = 0;
};

/// Abstract solver backend.
class EquivalenceChecker {
public:
  virtual ~EquivalenceChecker();

  /// Short display name ("Z3", "BlastBV", "BlastBV+RW").
  virtual std::string name() const = 0;

  /// Decides A == B over all inputs of Ctx's width, within
  /// \p TimeoutSeconds of wall-clock time.
  virtual CheckResult check(const Context &Ctx, const Expr *A, const Expr *B,
                            double TimeoutSeconds) = 0;
};

/// The in-tree bit-blasting backend. \p EnableRewriting selects the +RW
/// configuration.
std::unique_ptr<EquivalenceChecker> makeBlastChecker(bool EnableRewriting);

/// The AIG-based backend ("BlastBV+AIG"): carry-lookahead/carry-save
/// encodings over a structurally-hashed And-Inverter Graph feeding one
/// persistent incremental SAT solver (per-query assumption guards, learnt
/// clauses kept across queries). With \p Incremental false the solver state
/// is rebuilt per query — same verdicts, no cross-query reuse; the
/// determinism tests compare the two modes. Stateful: create one instance
/// per Context/worker thread (the harness CheckerFactory already does).
std::unique_ptr<EquivalenceChecker> makeAigChecker(bool Incremental = true);

/// The Z3 backend; returns nullptr when built without Z3.
std::unique_ptr<EquivalenceChecker> makeZ3Checker();

/// The MBA-theory backend ("SigCheck"): sampling refutation, Theorem 1 on
/// the linear fragment, and canonical-form comparison — no SAT search. Not
/// part of makeAllCheckers() (the paper's solver matrix); an extension.
std::unique_ptr<EquivalenceChecker> makeSignatureChecker();

/// All available backends in the paper's order (Z3, then the two
/// STP/Boolector stand-ins), plus the AIG/incremental backend.
/// \p IncrementalAig selects whether that backend reuses solver state
/// across queries (the default) or rebuilds per query.
std::vector<std::unique_ptr<EquivalenceChecker>>
makeAllCheckers(bool IncrementalAig = true);

//===----------------------------------------------------------------------===//
// Stage 0: the static equivalence prover in front of any backend
//===----------------------------------------------------------------------===//

/// Cumulative counters of the stage-0 static prover (analysis/Prover.h)
/// across the queries of one staged checker (or several sharing the struct).
struct StageZeroStats {
  size_t Proved = 0;      ///< answered Equivalent without a solver
  size_t Refuted = 0;     ///< answered NotEquivalent without a solver
  size_t Fallthrough = 0; ///< undecided; passed to the wrapped backend
  double StaticSeconds = 0; ///< wall-clock spent in the static prover
  double SolverSeconds = 0; ///< wall-clock spent in the wrapped backend
  ProveStats Saturation;    ///< accumulated e-graph saturation statistics

  size_t queries() const { return Proved + Refuted + Fallthrough; }
  size_t discharged() const { return Proved + Refuted; }
};

//===----------------------------------------------------------------------===//
// Verdict cache
//===----------------------------------------------------------------------===//

/// One memoized equivalence verdict. Decided outcomes are final; an
/// Unknown entry records the largest budget that failed to decide the
/// query, so a repeat with an equal-or-smaller timeout can return Timeout
/// immediately while a repeat with more budget still runs.
struct VerdictEntry {
  enum Kind : uint8_t { Equivalent, NotEquivalent, Unknown };
  uint8_t Outcome = Unknown;
  double BudgetSeconds = 0; ///< exhausted budget (Unknown only)
};

/// Thread-safe memo of equivalence queries, keyed on the ordered pair of
/// the operands' canonical fingerprints plus width and backend name (a
/// timeout under BlastBV says nothing about Z3 — sharing entries across
/// backends would change verdicts relative to an uncached run). Used as a
/// short-circuit in front of makeStagedChecker's stage 0; snapshots as one
/// section of the cache persistence format (support/Cache.h).
class VerdictCache {
public:
  explicit VerdictCache(size_t Capacity = 1 << 17) : Cache(Capacity) {}

  /// The cache key of query (A, B) against backend \p CheckerName. A and B
  /// are fingerprinted in order — the checkers are symmetric but callers
  /// present pairs in a stable order, and keeping the pair ordered costs
  /// at most a duplicate entry, never a wrong answer.
  static uint64_t queryKey(const Context &Ctx, const Expr *A, const Expr *B,
                           const std::string &CheckerName);

  bool lookup(uint64_t Key, VerdictEntry &Out) {
    return Cache.lookup(Key, Out);
  }

  /// Records \p E, merging with an existing entry: a decided verdict is
  /// never overwritten (it remains valid at any budget), and Unknown
  /// entries keep the maximum exhausted budget.
  void insert(uint64_t Key, const VerdictEntry &E) {
    Cache.insertMerge(Key, E,
                      [](VerdictEntry &Existing, const VerdictEntry &New) {
                        if (Existing.Outcome != VerdictEntry::Unknown)
                          return;
                        if (New.Outcome != VerdictEntry::Unknown) {
                          Existing = New;
                          return;
                        }
                        if (New.BudgetSeconds > Existing.BudgetSeconds)
                          Existing.BudgetSeconds = New.BudgetSeconds;
                      });
  }

  CacheStats stats() const { return Cache.stats(); }
  void clear() { Cache.clear(); }

  void save(SnapshotWriter &W) const;
  size_t loadSection(SnapshotReader &R, uint64_t Count);

  static constexpr const char *SectionName = "solver.verdicts";

private:
  ShardedCache<VerdictEntry> Cache;
};

/// Wraps \p Inner with the static equivalence prover as stage 0: each query
/// first runs congruence closure + bounded equality saturation with the
/// certified rule table (and abstract-domain refutation); only queries the
/// prover cannot decide reach the wrapped backend, with the static time
/// deducted from the timeout. Both stage-0 answers are sound, so the staged
/// checker's verdicts never differ from the backend's — queries just get
/// cheaper. The wrapper keeps the inner backend's name (tables stay
/// comparable) and reports its counters through \p Stats when given.
///
/// When \p Verdicts is given, it short-circuits repeated queries before
/// stage 0 even runs; cache hits do not touch the \p Stats counters (those
/// report work actually performed).
///
/// \p Ctx must be the context later passed to check() — the prover builds
/// e-nodes against its width and variable numbering.
std::unique_ptr<EquivalenceChecker>
makeStagedChecker(Context &Ctx, std::unique_ptr<EquivalenceChecker> Inner,
                  StageZeroStats *Stats = nullptr,
                  const ProveBudget &Budget = ProveBudget(),
                  VerdictCache *Verdicts = nullptr);

} // namespace mba

#endif // MBA_SOLVERS_EQUIVALENCECHECKER_H
