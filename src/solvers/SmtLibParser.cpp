//===- solvers/SmtLibParser.cpp - SMT-LIB2 benchmark reader ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/SmtLibParser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

using namespace mba;

namespace {

/// Minimal s-expression representation.
struct SExpr {
  std::string Atom;          // nonempty for atoms
  std::vector<SExpr> Items;  // children for lists

  bool isAtom() const { return !Atom.empty(); }
};

class SExprParser {
public:
  explicit SExprParser(std::string_view Text) : Text(Text) {}

  /// Parses all toplevel s-expressions; nullopt on error.
  std::optional<std::vector<SExpr>> parseAll(std::string &Error) {
    std::vector<SExpr> Result;
    for (;;) {
      skipTrivia();
      if (Pos >= Text.size())
        return Result;
      auto S = parseOne(Error);
      if (!S)
        return std::nullopt;
      Result.push_back(std::move(*S));
    }
  }

private:
  void skipTrivia() {
    for (;;) {
      while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
        ++Pos;
      if (Pos < Text.size() && Text[Pos] == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  }

  std::optional<SExpr> parseOne(std::string &Error) {
    skipTrivia();
    if (Pos >= Text.size()) {
      Error = "unexpected end of input";
      return std::nullopt;
    }
    if (Text[Pos] == '(') {
      ++Pos;
      SExpr List;
      for (;;) {
        skipTrivia();
        if (Pos >= Text.size()) {
          Error = "unterminated list";
          return std::nullopt;
        }
        if (Text[Pos] == ')') {
          ++Pos;
          return List;
        }
        auto Child = parseOne(Error);
        if (!Child)
          return std::nullopt;
        List.Items.push_back(std::move(*Child));
      }
    }
    if (Text[Pos] == ')') {
      Error = "unexpected ')'";
      return std::nullopt;
    }
    size_t Start = Pos;
    while (Pos < Text.size() && !std::isspace((unsigned char)Text[Pos]) &&
           Text[Pos] != '(' && Text[Pos] != ')' && Text[Pos] != ';')
      ++Pos;
    SExpr Atom;
    Atom.Atom = std::string(Text.substr(Start, Pos - Start));
    return Atom;
  }

  std::string_view Text;
  size_t Pos = 0;
};

/// Term translation context.
struct TermReader {
  Context &Ctx;
  std::string &Error;

  const Expr *read(const SExpr &S) {
    if (S.isAtom()) {
      // A declared constant (variable) or a plain decimal numeral.
      if (std::isdigit((unsigned char)S.Atom[0]))
        return Ctx.getConst(std::strtoull(S.Atom.c_str(), nullptr, 10));
      if (S.Atom.rfind("#x", 0) == 0)
        return Ctx.getConst(std::strtoull(S.Atom.c_str() + 2, nullptr, 16));
      return Ctx.getVar(S.Atom);
    }
    // (_ bvN w) literal?
    if (S.Items.size() == 3 && S.Items[0].Atom == "_" &&
        S.Items[1].Atom.rfind("bv", 0) == 0) {
      return Ctx.getConst(
          std::strtoull(S.Items[1].Atom.c_str() + 2, nullptr, 10));
    }
    if (S.Items.empty() || !S.Items[0].isAtom()) {
      Error = "malformed term";
      return nullptr;
    }
    const std::string &Op = S.Items[0].Atom;
    auto Unary = [&](ExprKind K) -> const Expr * {
      if (S.Items.size() != 2) {
        Error = Op + " expects one operand";
        return nullptr;
      }
      const Expr *A = read(S.Items[1]);
      return A ? Ctx.getUnary(K, A) : nullptr;
    };
    // SMT-LIB bv operators are left-associative n-ary; fold pairwise.
    auto Nary = [&](ExprKind K) -> const Expr * {
      if (S.Items.size() < 3) {
        Error = Op + " expects at least two operands";
        return nullptr;
      }
      const Expr *Acc = read(S.Items[1]);
      for (size_t I = 2; Acc && I != S.Items.size(); ++I) {
        const Expr *B = read(S.Items[I]);
        Acc = B ? Ctx.getBinary(K, Acc, B) : nullptr;
      }
      return Acc;
    };
    if (Op == "bvnot")
      return Unary(ExprKind::Not);
    if (Op == "bvneg")
      return Unary(ExprKind::Neg);
    if (Op == "bvadd")
      return Nary(ExprKind::Add);
    if (Op == "bvsub")
      return Nary(ExprKind::Sub);
    if (Op == "bvmul")
      return Nary(ExprKind::Mul);
    if (Op == "bvand")
      return Nary(ExprKind::And);
    if (Op == "bvor")
      return Nary(ExprKind::Or);
    if (Op == "bvxor")
      return Nary(ExprKind::Xor);
    Error = "unsupported operator '" + Op + "'";
    return nullptr;
  }
};

} // namespace

std::optional<SmtLibQuery> mba::parseSmtLibQuery(Context &Ctx,
                                                 std::string_view Script,
                                                 std::string *Error) {
  std::string Err;
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };

  SExprParser Parser(Script);
  auto Top = Parser.parseAll(Err);
  if (!Top)
    return Fail(Err);

  SmtLibQuery Query;
  bool SawAssert = false;
  TermReader Reader{Ctx, Err};

  for (const SExpr &S : *Top) {
    if (S.isAtom() || S.Items.empty() || !S.Items[0].isAtom())
      return Fail("unexpected toplevel form");
    const std::string &Head = S.Items[0].Atom;
    if (Head == "set-logic" || Head == "set-info" || Head == "check-sat" ||
        Head == "exit" || Head == "get-model")
      continue;
    if (Head == "declare-const" || Head == "declare-fun") {
      // (declare-const name (_ BitVec w)); declare-fun adds an empty
      // argument list we require to be ().
      const SExpr *Sort = nullptr;
      if (Head == "declare-const" && S.Items.size() == 3)
        Sort = &S.Items[2];
      else if (Head == "declare-fun" && S.Items.size() == 4 &&
               !S.Items[2].isAtom() && S.Items[2].Items.empty())
        Sort = &S.Items[3];
      if (!Sort || Sort->isAtom() || Sort->Items.size() != 3 ||
          Sort->Items[1].Atom != "BitVec")
        return Fail("unsupported declaration (expect (_ BitVec w))");
      unsigned W =
          (unsigned)std::strtoul(Sort->Items[2].Atom.c_str(), nullptr, 10);
      if (Query.Width && Query.Width != W)
        return Fail("mixed bit-vector widths are not supported");
      Query.Width = W;
      if (W != Ctx.width())
        return Fail("script width " + std::to_string(W) +
                    " does not match context width " +
                    std::to_string(Ctx.width()));
      Ctx.getVar(S.Items[1].Atom);
      continue;
    }
    if (Head == "assert") {
      if (SawAssert)
        return Fail("multiple assertions are not supported");
      if (S.Items.size() != 2)
        return Fail("malformed assert");
      const SExpr *Body = &S.Items[1];
      bool Negated = false;
      if (!Body->isAtom() && Body->Items.size() == 2 &&
          Body->Items[0].Atom == "not") {
        Negated = true;
        Body = &Body->Items[1];
      }
      if (Body->isAtom() || Body->Items.size() != 3)
        return Fail("assert body must be (=|distinct lhs rhs)");
      const std::string &Rel = Body->Items[0].Atom;
      if (Rel != "=" && Rel != "distinct")
        return Fail("assert body must be (=|distinct lhs rhs)");
      Query.IsDistinct = (Rel == "distinct") != Negated;
      Query.Lhs = Reader.read(Body->Items[1]);
      if (!Query.Lhs)
        return Fail(Err);
      Query.Rhs = Reader.read(Body->Items[2]);
      if (!Query.Rhs)
        return Fail(Err);
      SawAssert = true;
      continue;
    }
    return Fail("unsupported command '" + Head + "'");
  }
  if (!SawAssert)
    return Fail("no assertion found");
  return Query;
}
