//===- solvers/SmtLib.cpp - SMT-LIB2 export --------------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/SmtLib.h"

#include "ast/ExprUtils.h"

#include <algorithm>
#include <unordered_map>

using namespace mba;

namespace {

const char *smtOpName(ExprKind K) {
  switch (K) {
  case ExprKind::Not:
    return "bvnot";
  case ExprKind::Neg:
    return "bvneg";
  case ExprKind::Add:
    return "bvadd";
  case ExprKind::Sub:
    return "bvsub";
  case ExprKind::Mul:
    return "bvmul";
  case ExprKind::And:
    return "bvand";
  case ExprKind::Or:
    return "bvor";
  case ExprKind::Xor:
    return "bvxor";
  default:
    assert(false && "leaf kinds have no operator name");
    return "?";
  }
}

} // namespace

std::string mba::toSmtLibTerm(const Context &Ctx, const Expr *E) {
  // Post-order rendering with DAG sharing flattened into the string (a
  // `let`-based encoding would be smaller but this keeps terms readable;
  // memoizing the strings keeps the cost linear in the DAG).
  std::unordered_map<const Expr *, std::string> Memo;
  forEachNodePostOrder(E, [&](const Expr *N) {
    std::string S;
    switch (N->kind()) {
    case ExprKind::Var:
      S = N->varName();
      break;
    case ExprKind::Const:
      S = "(_ bv" + std::to_string(N->constValue()) + " " +
          std::to_string(Ctx.width()) + ")";
      break;
    default: {
      S = "(";
      S += smtOpName(N->kind());
      for (unsigned I = 0; I != N->numOperands(); ++I) {
        S += ' ';
        S += Memo.at(N->getOperand(I));
      }
      S += ')';
      break;
    }
    }
    Memo.emplace(N, std::move(S));
  });
  return Memo.at(E);
}

std::string mba::toSmtLibQuery(const Context &Ctx, const Expr *A,
                               const Expr *B) {
  std::vector<const Expr *> Vars = collectVariables(A);
  for (const Expr *V : collectVariables(B))
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  std::sort(Vars.begin(), Vars.end(), [](const Expr *X, const Expr *Y) {
    return std::string_view(X->varName()) < std::string_view(Y->varName());
  });

  std::string Out;
  Out += "(set-logic QF_BV)\n";
  for (const Expr *V : Vars) {
    Out += "(declare-const ";
    Out += V->varName();
    Out += " (_ BitVec " + std::to_string(Ctx.width()) + "))\n";
  }
  Out += "(assert (distinct " + toSmtLibTerm(Ctx, A) + " " +
         toSmtLibTerm(Ctx, B) + "))\n";
  Out += "(check-sat)\n";
  return Out;
}
