//===- solvers/SmtLib.h - SMT-LIB2 export -----------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SMT-LIB2 rendering of MBA expressions and equivalence queries, so the
/// library's output can be fed to any external solver (the paper drives
/// Z3, STP and Boolector through their APIs; SMT-LIB2 is the portable
/// equivalent and what the artifact's datasets ship as).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SOLVERS_SMTLIB_H
#define MBA_SOLVERS_SMTLIB_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <optional>
#include <string>

namespace mba {

/// Renders \p E as an SMT-LIB2 term over QF_BV (s-expression form,
/// `bvadd`/`bvand`/... operators, `(_ bvN w)` literals).
std::string toSmtLibTerm(const Context &Ctx, const Expr *E);

/// Renders a complete benchmark script asserting `A != B`: `unsat` from a
/// solver means the identity A == B holds. Declares every variable of both
/// sides at the context width and ends with (check-sat).
std::string toSmtLibQuery(const Context &Ctx, const Expr *A, const Expr *B);

/// Parses and solves an SMT-LIB2 script with the Z3 backend (used to
/// validate exported queries end-to-end). Returns true for sat, false for
/// unsat, std::nullopt when Z3 is unavailable or answers unknown.
std::optional<bool> solveSmtLibWithZ3(const std::string &Script,
                                      double TimeoutSeconds);

} // namespace mba

#endif // MBA_SOLVERS_SMTLIB_H
