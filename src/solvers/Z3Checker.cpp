//===- solvers/Z3Checker.cpp - Z3 C++ API backend --------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/EquivalenceChecker.h"
#include "solvers/SmtLib.h"

#ifdef MBA_HAVE_Z3

#include "ast/ExprUtils.h"
#include "support/QueryLog.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"

#include <z3++.h>

#include <functional>
#include <optional>
#include <unordered_map>

using namespace mba;

namespace {

class Z3Checker : public EquivalenceChecker {
public:
  std::string name() const override { return "Z3"; }

  CheckResult check(const Context &Ctx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) override {
    MBA_TRACE_SPAN("solve.backend.Z3");
    // Same-kind scope: pass-through under a staged checker (fields land in
    // its record), a record of its own when the backend runs unstaged.
    querylog::QueryScope LogScope("check");
    if (querylog::Record *QR = querylog::active()) {
      QR->str("backend", name());
      QR->num("width", Ctx.width());
    }
    Stopwatch Timer;
    CheckResult Result;
    try {
      z3::context Z3Ctx;
      z3::solver Solver(Z3Ctx);
      z3::params Params(Z3Ctx);
      unsigned TimeoutMs =
          TimeoutSeconds >= 1e6 ? 0u : (unsigned)(TimeoutSeconds * 1000);
      if (TimeoutMs)
        Params.set("timeout", TimeoutMs);
      Solver.set(Params);

      std::unordered_map<const Expr *, z3::expr> Cache;
      z3::expr ZA = translate(Z3Ctx, Ctx, A, Cache);
      z3::expr ZB = translate(Z3Ctx, Ctx, B, Cache);
      Solver.add(ZA != ZB);

      switch (Solver.check()) {
      case z3::unsat:
        Result.Outcome = Verdict::Equivalent;
        break;
      case z3::sat:
        Result.Outcome = Verdict::NotEquivalent;
        break;
      case z3::unknown:
        Result.Outcome = Verdict::Timeout;
        break;
      }
    } catch (const z3::exception &) {
      Result.Outcome = Verdict::Timeout; // resource-out or internal error
    }
    Result.Seconds = Timer.seconds();
    if (querylog::Record *QR = querylog::active())
      QR->str("verdict", verdictName(Result.Outcome));
    return Result;
  }

private:
  /// Structural translation with DAG sharing. Iterative post-order keeps
  /// the recursion depth independent of the input.
  static z3::expr
  translate(z3::context &Z3Ctx, const Context &Ctx, const Expr *E,
            std::unordered_map<const Expr *, z3::expr> &Cache) {
    unsigned W = Ctx.width();
    forEachNodePostOrder(E, [&](const Expr *N) {
      if (Cache.find(N) != Cache.end())
        return;
      auto Operand = [&](const Expr *C) -> z3::expr & {
        return Cache.at(C);
      };
      std::optional<z3::expr> Z;
      switch (N->kind()) {
      case ExprKind::Var:
        Z = Z3Ctx.bv_const(N->varName(), W);
        break;
      case ExprKind::Const:
        Z = Z3Ctx.bv_val((uint64_t)N->constValue(), W);
        break;
      case ExprKind::Not:
        Z = ~Operand(N->operand());
        break;
      case ExprKind::Neg:
        Z = -Operand(N->operand());
        break;
      case ExprKind::Add:
        Z = Operand(N->lhs()) + Operand(N->rhs());
        break;
      case ExprKind::Sub:
        Z = Operand(N->lhs()) - Operand(N->rhs());
        break;
      case ExprKind::Mul:
        Z = Operand(N->lhs()) * Operand(N->rhs());
        break;
      case ExprKind::And:
        Z = Operand(N->lhs()) & Operand(N->rhs());
        break;
      case ExprKind::Or:
        Z = Operand(N->lhs()) | Operand(N->rhs());
        break;
      case ExprKind::Xor:
        Z = Operand(N->lhs()) ^ Operand(N->rhs());
        break;
      }
      Cache.emplace(N, *Z);
    });
    return Cache.at(E);
  }
};

} // namespace

std::unique_ptr<EquivalenceChecker> mba::makeZ3Checker() {
  return std::make_unique<Z3Checker>();
}

std::optional<bool> mba::solveSmtLibWithZ3(const std::string &Script,
                                           double TimeoutSeconds) {
  try {
    z3::context Z3Ctx;
    z3::solver Solver(Z3Ctx);
    z3::params Params(Z3Ctx);
    if (TimeoutSeconds < 1e6)
      Params.set("timeout", (unsigned)(TimeoutSeconds * 1000));
    Solver.set(Params);
    Solver.from_string(Script.c_str());
    switch (Solver.check()) {
    case z3::sat:
      return true;
    case z3::unsat:
      return false;
    case z3::unknown:
      return std::nullopt;
    }
  } catch (const z3::exception &) {
  }
  return std::nullopt;
}

#else

std::unique_ptr<mba::EquivalenceChecker> mba::makeZ3Checker() {
  return nullptr;
}

std::optional<bool> mba::solveSmtLibWithZ3(const std::string &,
                                           double) {
  return std::nullopt;
}

#endif // MBA_HAVE_Z3
