//===- solvers/SmtLibParser.h - SMT-LIB2 benchmark reader ------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader for the QF_BV SMT-LIB2 subset that MBA equivalence benchmarks
/// use (and that toSmtLibQuery emits): bit-vector constant declarations,
/// the operators bvadd/bvsub/bvmul/bvand/bvor/bvxor/bvnot/bvneg, `(_ bvN
/// w)` literals, and one asserted (dis)equality. This allows external MBA
/// datasets shipped as .smt2 files to be pulled into the library.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SOLVERS_SMTLIBPARSER_H
#define MBA_SOLVERS_SMTLIBPARSER_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <optional>
#include <string>
#include <string_view>

namespace mba {

/// A parsed equivalence benchmark.
struct SmtLibQuery {
  const Expr *Lhs = nullptr;
  const Expr *Rhs = nullptr;
  unsigned Width = 0;    ///< declared bit-vector width
  bool IsDistinct = true; ///< assert(distinct L R) vs assert(= L R)
};

/// Parses \p Script into \p Ctx. The context's width must equal the
/// script's declared width (diagnosed otherwise). Returns std::nullopt and
/// fills \p Error on malformed input or unsupported constructs.
std::optional<SmtLibQuery> parseSmtLibQuery(Context &Ctx,
                                            std::string_view Script,
                                            std::string *Error = nullptr);

} // namespace mba

#endif // MBA_SOLVERS_SMTLIBPARSER_H
