//===- solvers/StagedChecker.cpp - Static prover as solver stage 0 --------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The stage-0 wrapper around any EquivalenceChecker backend: a query is
/// first handed to the static equivalence prover (congruence closure +
/// bounded equality saturation with the certified rule table, abstract-
/// domain refutation); only an Unknown verdict reaches the wrapped solver.
/// Both static answers are sound, so wrapping never changes verdicts — it
/// only removes solver work (the Table 6/8 counters report how much).
///
//===----------------------------------------------------------------------===//

#include "analysis/Prover.h"
#include "solvers/EquivalenceChecker.h"
#include "support/Stopwatch.h"

#include <cassert>
#include <utility>

using namespace mba;

namespace {

class StagedChecker final : public EquivalenceChecker {
public:
  StagedChecker(Context &Ctx, std::unique_ptr<EquivalenceChecker> Inner,
                StageZeroStats *Stats, const ProveBudget &Budget)
      : Ctx(Ctx), Inner(std::move(Inner)), Stats(Stats), Budget(Budget) {}

  // The inner backend's name: Table 2/6 rows keep their solver labels and
  // the stage-0 effect shows up purely in the counters and times.
  std::string name() const override { return Inner->name(); }

  CheckResult check(const Context &CheckCtx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) override {
    assert(&CheckCtx == &Ctx &&
           "staged checker bound to a different context than the query");
    (void)CheckCtx;
    Stopwatch Timer;
    ProveResult Static = Prover(Ctx).prove(A, B, Budget);
    double StaticSeconds = Timer.seconds();
    if (Stats) {
      Stats->StaticSeconds += StaticSeconds;
      Stats->Saturation.Iterations += Static.Stats.Iterations;
      Stats->Saturation.ENodes += Static.Stats.ENodes;
      Stats->Saturation.EClasses += Static.Stats.EClasses;
      Stats->Saturation.Merges += Static.Stats.Merges;
      Stats->Saturation.Matches += Static.Stats.Matches;
    }
    switch (Static.Outcome) {
    case ProveOutcome::Proved:
      if (Stats)
        ++Stats->Proved;
      return {Verdict::Equivalent, StaticSeconds};
    case ProveOutcome::Refuted:
      if (Stats)
        ++Stats->Refuted;
      return {Verdict::NotEquivalent, StaticSeconds};
    case ProveOutcome::Unknown:
      break;
    }
    if (Stats)
      ++Stats->Fallthrough;
    double Remaining = TimeoutSeconds - StaticSeconds;
    if (Remaining <= 0)
      return {Verdict::Timeout, StaticSeconds};
    CheckResult R = Inner->check(Ctx, A, B, Remaining);
    if (Stats)
      Stats->SolverSeconds += R.Seconds;
    R.Seconds += StaticSeconds;
    return R;
  }

private:
  Context &Ctx;
  std::unique_ptr<EquivalenceChecker> Inner;
  StageZeroStats *Stats;
  ProveBudget Budget;
};

} // namespace

std::unique_ptr<EquivalenceChecker>
mba::makeStagedChecker(Context &Ctx, std::unique_ptr<EquivalenceChecker> Inner,
                       StageZeroStats *Stats, const ProveBudget &Budget) {
  return std::make_unique<StagedChecker>(Ctx, std::move(Inner), Stats, Budget);
}
