//===- solvers/StagedChecker.cpp - Static prover as solver stage 0 --------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The stage-0 wrapper around any EquivalenceChecker backend: a query is
/// first handed to the static equivalence prover (congruence closure +
/// bounded equality saturation with the certified rule table, abstract-
/// domain refutation); only an Unknown verdict reaches the wrapped solver.
/// Both static answers are sound, so wrapping never changes verdicts — it
/// only removes solver work (the Table 6/8 counters report how much).
///
/// With a VerdictCache attached, a repeated query short-circuits before
/// stage 0: a decided entry returns immediately, and an Unknown entry whose
/// recorded budget covers the current timeout returns Timeout without
/// re-running the solver (re-running an exhausted budget cannot decide
/// more). Hits bypass the StageZeroStats counters — those report work done.
///
//===----------------------------------------------------------------------===//

#include "analysis/Prover.h"
#include "ast/ExprUtils.h"
#include "solvers/EquivalenceChecker.h"
#include "support/QueryLog.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <utility>

using namespace mba;

uint64_t VerdictCache::queryKey(const Context &Ctx, const Expr *A,
                                const Expr *B,
                                const std::string &CheckerName) {
  uint64_t H = hashMix64(Ctx.mask());
  H = hashCombine64(H, exprFingerprint(A));
  H = hashCombine64(H, exprFingerprint(B));
  H = hashCombine64(H, hashString64(CheckerName));
  return H;
}

void VerdictCache::save(SnapshotWriter &W) const {
  saveCacheSection(W, SectionName, Cache,
                   [](const VerdictEntry &E, std::vector<uint8_t> &Out) {
                     putU8(Out, E.Outcome);
                     // Budgets are wall-clock seconds; microsecond fixed
                     // point survives the round-trip exactly enough for the
                     // coverage test (stored >= queried).
                     putU64(Out, (uint64_t)(E.BudgetSeconds * 1e6));
                   });
}

size_t VerdictCache::loadSection(SnapshotReader &R, uint64_t Count) {
  return loadCacheSection(
      R, Count, Cache,
      [](const std::vector<uint8_t> &Buf) -> std::optional<VerdictEntry> {
        ByteCursor C(Buf);
        VerdictEntry E;
        E.Outcome = C.u8();
        E.BudgetSeconds = (double)C.u64() / 1e6;
        if (C.failed() || !C.atEnd() || E.Outcome > VerdictEntry::Unknown)
          return std::nullopt;
        return E;
      });
}

namespace {

/// Flight-recorder field spelling of a fingerprint (too wide for a JSON
/// number).
std::string fingerprintHex(uint64_t Fp) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, Fp);
  return Buf;
}

/// Stamps the verdict and verdict-cache disposition onto the active
/// flight-recorder record, if any.
void recordCheckOutcome(Verdict V, const char *CacheState) {
  if (querylog::Record *QR = querylog::active()) {
    QR->str("verdict", verdictName(V));
    QR->str("verdict_cache", CacheState);
  }
}

class StagedChecker final : public EquivalenceChecker {
public:
  StagedChecker(Context &Ctx, std::unique_ptr<EquivalenceChecker> Inner,
                StageZeroStats *Stats, const ProveBudget &Budget,
                VerdictCache *Verdicts)
      : Ctx(Ctx), Inner(std::move(Inner)), Stats(Stats), Budget(Budget),
        Verdicts(Verdicts) {}

  // The inner backend's name: Table 2/6 rows keep their solver labels and
  // the stage-0 effect shows up purely in the counters and times.
  std::string name() const override { return Inner->name(); }

  CheckResult check(const Context &CheckCtx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) override {
    assert(&CheckCtx == &Ctx &&
           "staged checker bound to a different context than the query");
    (void)CheckCtx;
    MBA_TRACE_SPAN("solve.query");
    static telemetry::Counter &Queries = telemetry::counter("solve.queries");
    Queries.add();
    Stopwatch Timer;

    // Flight recorder: one record per equivalence query. Observational
    // only — verdicts are pinned bit-identical with and without a log.
    querylog::QueryScope LogScope("check");
    if (querylog::Record *QR = querylog::active()) {
      QR->num("width", Ctx.width());
      QR->str("backend", Inner->name());
      QR->str("fp_a", fingerprintHex(exprFingerprint(A)));
      QR->str("fp_b", fingerprintHex(exprFingerprint(B)));
      QR->fnum("timeout_s", TimeoutSeconds);
    }

    uint64_t Key = 0;
    if (Verdicts) {
      Key = VerdictCache::queryKey(Ctx, A, B, Inner->name());
      VerdictEntry Hit;
      if (Verdicts->lookup(Key, Hit)) {
        static telemetry::Counter &VerdictHits =
            telemetry::counter("solve.verdict_cache_hits");
        switch (Hit.Outcome) {
        case VerdictEntry::Equivalent:
          VerdictHits.add();
          recordCheckOutcome(Verdict::Equivalent, "hit");
          return {Verdict::Equivalent, Timer.seconds()};
        case VerdictEntry::NotEquivalent:
          VerdictHits.add();
          recordCheckOutcome(Verdict::NotEquivalent, "hit");
          return {Verdict::NotEquivalent, Timer.seconds()};
        case VerdictEntry::Unknown:
          // Usable only when the failed budget covers this query's budget;
          // a larger timeout might still decide it, so fall through and
          // actually run. The epsilon absorbs snapshot rounding.
          if (TimeoutSeconds <= Hit.BudgetSeconds + 1e-9) {
            VerdictHits.add();
            recordCheckOutcome(Verdict::Timeout, "hit");
            return {Verdict::Timeout, Timer.seconds()};
          }
          break;
        }
      }
    }

    CheckResult R = checkUncached(A, B, TimeoutSeconds);
    recordCheckOutcome(R.Outcome, Verdicts ? "miss" : "off");
    if (Verdicts) {
      VerdictEntry E;
      switch (R.Outcome) {
      case Verdict::Equivalent:
        E.Outcome = VerdictEntry::Equivalent;
        break;
      case Verdict::NotEquivalent:
        E.Outcome = VerdictEntry::NotEquivalent;
        break;
      case Verdict::Timeout:
        E.Outcome = VerdictEntry::Unknown;
        E.BudgetSeconds = TimeoutSeconds;
        break;
      }
      Verdicts->insert(Key, E);
    }
    return R;
  }

private:
  CheckResult checkUncached(const Expr *A, const Expr *B,
                            double TimeoutSeconds) {
    Stopwatch Timer;
    ProveResult Static = [&] {
      MBA_TRACE_SPAN("solve.stage0");
      querylog::StageTimer Stage("stage0");
      return Prover(Ctx).prove(A, B, Budget);
    }();
    double StaticSeconds = Timer.seconds();
    if (querylog::Record *QR = querylog::active()) {
      QR->str("stage0", proveOutcomeName(Static.Outcome));
      QR->str("stage0_detail", Static.Detail);
      QR->num("stage0_iterations", Static.Stats.Iterations);
      QR->num("stage0_enodes", Static.Stats.ENodes);
      QR->num("stage0_eclasses", Static.Stats.EClasses);
      QR->num("stage0_matches", Static.Stats.Matches);
    }
    if (Stats) {
      Stats->StaticSeconds += StaticSeconds;
      Stats->Saturation.Iterations += Static.Stats.Iterations;
      Stats->Saturation.ENodes += Static.Stats.ENodes;
      Stats->Saturation.EClasses += Static.Stats.EClasses;
      Stats->Saturation.Merges += Static.Stats.Merges;
      Stats->Saturation.Matches += Static.Stats.Matches;
    }
    static telemetry::Counter &Proved = telemetry::counter("stage0.proved");
    static telemetry::Counter &Refuted = telemetry::counter("stage0.refuted");
    static telemetry::Counter &Fallthrough =
        telemetry::counter("stage0.fallthrough");
    switch (Static.Outcome) {
    case ProveOutcome::Proved:
      Proved.add();
      if (Stats)
        ++Stats->Proved;
      return {Verdict::Equivalent, StaticSeconds};
    case ProveOutcome::Refuted:
      Refuted.add();
      if (Stats)
        ++Stats->Refuted;
      return {Verdict::NotEquivalent, StaticSeconds};
    case ProveOutcome::Unknown:
      break;
    }
    Fallthrough.add();
    if (Stats)
      ++Stats->Fallthrough;
    double Remaining = TimeoutSeconds - StaticSeconds;
    if (Remaining <= 0)
      return {Verdict::Timeout, StaticSeconds};
    CheckResult R = [&] {
      querylog::StageTimer Stage("backend");
      return Inner->check(Ctx, A, B, Remaining);
    }();
    if (Stats)
      Stats->SolverSeconds += R.Seconds;
    R.Seconds += StaticSeconds;
    return R;
  }

  Context &Ctx;
  std::unique_ptr<EquivalenceChecker> Inner;
  StageZeroStats *Stats;
  ProveBudget Budget;
  VerdictCache *Verdicts;
};

} // namespace

std::unique_ptr<EquivalenceChecker>
mba::makeStagedChecker(Context &Ctx, std::unique_ptr<EquivalenceChecker> Inner,
                       StageZeroStats *Stats, const ProveBudget &Budget,
                       VerdictCache *Verdicts) {
  return std::make_unique<StagedChecker>(Ctx, std::move(Inner), Stats, Budget,
                                         Verdicts);
}
