//===- solvers/SignatureChecker.cpp - MBA-theory decision procedure -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// An equivalence backend built from the paper's own theory instead of SAT:
///
///  * sampling refutation — random + corner inputs through the compiled
///    evaluator catch almost every non-identity in microseconds;
///  * Theorem 1 — two *linear* MBAs are equivalent iff their signature
///    vectors match: a sound and complete decision procedure for the
///    linear fragment, no search involved;
///  * canonicalization — for non-linear inputs, both sides go through
///    MBASolver; identical canonical forms prove equivalence (sound), and
///    linear canonical forms fall back to Theorem 1.
///
/// When none of the three fire, the checker answers Timeout (unknown) — it
/// never guesses. This backend is the library's "what the paper's insight
/// buys you if you build the solver around it" extension; it is not part
/// of makeAllCheckers() so the paper's three-solver matrix stays intact.
///
//===----------------------------------------------------------------------===//

#include "solvers/EquivalenceChecker.h"

#include "ast/BitslicedEval.h"
#include "ast/ExprUtils.h"
#include "mba/Classify.h"
#include "mba/Signature.h"
#include "mba/Simplifier.h"
#include "support/Bitslice.h"
#include "support/RNG.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <cstring>

using namespace mba;

namespace {

class SignatureChecker : public EquivalenceChecker {
public:
  std::string name() const override { return "SigCheck"; }

  CheckResult check(const Context &Ctx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) override {
    Stopwatch Timer;
    CheckResult Result;
    Result.Outcome = checkImpl(Ctx, A, B, TimeoutSeconds);
    Result.Seconds = Timer.seconds();
    return Result;
  }

private:
  static std::vector<const Expr *> unionVars(const Expr *A, const Expr *B) {
    std::vector<const Expr *> Vars = collectVariables(A);
    for (const Expr *V : collectVariables(B))
      if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
        Vars.push_back(V);
    std::sort(Vars.begin(), Vars.end(), [](const Expr *X, const Expr *Y) {
      return std::strcmp(X->varName(), Y->varName()) < 0;
    });
    return Vars;
  }

  Verdict checkImpl(const Context &Ctx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) {
    (void)TimeoutSeconds; // every stage is fast and bounded

    std::vector<const Expr *> Vars = unionVars(A, B);
    unsigned MaxIndex = 0;
    for (const Expr *V : Vars)
      MaxIndex = std::max(MaxIndex, V->varIndex());

    // Stage 1: sampling refutation (random + all corners for <= 12 vars),
    // batched 64 points per block through the bitsliced evaluator. The
    // compiled programs are cached on the context, so re-checking either
    // side against a new partner recompiles nothing.
    const BitslicedExpr &CA = Ctx.getBitsliced(A);
    const BitslicedExpr &CB = Ctx.getBitsliced(B);
    RNG Rng(0x516CAFE); // deterministic sampling
    constexpr unsigned NumSamples = 128;
    std::vector<uint64_t> Lanes((size_t)(MaxIndex + 1) * NumSamples);
    std::vector<const uint64_t *> LanePtrs(MaxIndex + 1, nullptr);
    for (const Expr *V : Vars)
      LanePtrs[V->varIndex()] =
          Lanes.data() + (size_t)V->varIndex() * NumSamples;
    // Draw point-major, preserving the historical RNG stream order (each
    // point consumes |Vars| draws in name-sorted variable order).
    for (unsigned I = 0; I != NumSamples; ++I)
      for (const Expr *V : Vars)
        Lanes[(size_t)V->varIndex() * NumSamples + I] = Rng.next();
    if (CA.evaluatePoints(LanePtrs, NumSamples) !=
        CB.evaluatePoints(LanePtrs, NumSamples))
      return Verdict::NotEquivalent;
    unsigned T = (unsigned)Vars.size();
    if (T <= 12) {
      // Corner k sets variable I to all-ones iff bit I of k is set (note:
      // the opposite bit order from computeSignature's truthBit). The
      // sweep runs one SIMD-wide block at a time — up to 512 corners per
      // evaluation on AVX-512 — with per-64-lane-word masks.
      const size_t Corners = (size_t)1 << T;
      // One-word-per-var masks (the legacy path) while everything fits a
      // 64-lane block; per-64-lane-word masks for the wide engine above.
      const unsigned Words = Corners <= bitslice::LanesPerBlock
                                 ? 1
                                 : BitslicedExpr::wideLanes() / 64;
      const size_t BlockLanes = (size_t)Words * 64;
      std::vector<uint64_t> Masks(((size_t)MaxIndex + 1) * Words, 0);
      uint64_t CornA[bitslice::MaxWideLanes], CornB[bitslice::MaxWideLanes];
      for (size_t Base = 0; Base < Corners; Base += BlockLanes) {
        unsigned N =
            (unsigned)std::min<size_t>(BlockLanes, Corners - Base);
        for (unsigned I = 0; I != T; ++I) {
          uint64_t *M = Masks.data() + (size_t)Vars[I]->varIndex() * Words;
          for (unsigned W = 0; W != Words; ++W)
            M[W] = bitslice::cornerMask(I, Base + 64 * W);
        }
        if (Corners <= bitslice::LanesPerBlock) {
          CA.evaluateCorners({Masks.data(), (size_t)MaxIndex + 1}, N, CornA);
          CB.evaluateCorners({Masks.data(), (size_t)MaxIndex + 1}, N, CornB);
        } else {
          CA.evaluateCornersWide(Masks, N, CornA);
          CB.evaluateCornersWide(Masks, N, CornB);
        }
        if (!std::equal(CornA, CornA + N, CornB))
          return Verdict::NotEquivalent;
      }
    }

    // Stage 2: Theorem 1 on the linear fragment (complete there).
    // The simplifier interns new nodes in the context; interning is not an
    // observable mutation of existing expressions, so the cast is benign.
    Context &MutableCtx = const_cast<Context &>(Ctx);
    if (classifyMBA(Ctx, A) == MBAKind::Linear &&
        classifyMBA(Ctx, B) == MBAKind::Linear && T <= 12)
      return linearMBAEquivalent(Ctx, A, B) ? Verdict::Equivalent
                                            : Verdict::NotEquivalent;

    // Stage 3: canonicalize both sides.
    MBASolver Solver(MutableCtx);
    const Expr *SA = Solver.simplify(A);
    const Expr *SB = Solver.simplify(B);
    if (SA == SB)
      return Verdict::Equivalent;
    if (classifyMBA(Ctx, SA) == MBAKind::Linear &&
        classifyMBA(Ctx, SB) == MBAKind::Linear &&
        unionVars(SA, SB).size() <= 12)
      return linearMBAEquivalent(Ctx, SA, SB) ? Verdict::Equivalent
                                              : Verdict::NotEquivalent;
    return Verdict::Timeout; // unknown: never guess
  }
};

} // namespace

std::unique_ptr<EquivalenceChecker> mba::makeSignatureChecker() {
  return std::make_unique<SignatureChecker>();
}
