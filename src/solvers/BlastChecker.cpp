//===- solvers/BlastChecker.cpp - In-tree bit-vector backend --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/EquivalenceChecker.h"

#include "bitblast/BitBlaster.h"
#include "bitblast/ExprBlaster.h"
#include "support/QueryLog.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"

using namespace mba;

const char *mba::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Equivalent:
    return "equivalent";
  case Verdict::NotEquivalent:
    return "not-equivalent";
  case Verdict::Timeout:
    return "timeout";
  }
  return "?";
}

EquivalenceChecker::~EquivalenceChecker() = default;

namespace {

class BlastChecker : public EquivalenceChecker {
public:
  explicit BlastChecker(bool EnableRewriting) : Rewriting(EnableRewriting) {}

  std::string name() const override {
    return Rewriting ? "BlastBV+RW" : "BlastBV";
  }

  CheckResult check(const Context &Ctx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) override {
    MBA_TRACE_SPAN(Rewriting ? "solve.backend.BlastBV+RW"
                             : "solve.backend.BlastBV");
    static telemetry::Counter &CtrEncodeVars =
        telemetry::counter("sat.encode.vars");
    static telemetry::Counter &CtrEncodeClauses =
        telemetry::counter("sat.encode.clauses");
    // Same-kind scope: pass-through under a staged checker (fields land in
    // its record), a record of its own when the backend runs unstaged.
    querylog::QueryScope LogScope("check");
    if (querylog::Record *QR = querylog::active()) {
      QR->str("backend", name());
      QR->num("width", Ctx.width());
    }
    Stopwatch Timer;
    sat::SatSolver Solver;
    BitBlaster Blaster(Solver, Ctx.width(), Rewriting);
    ExprBlaster EB(Blaster);
    auto WA = EB.blast(A);
    auto WB = EB.blast(B);
    Blaster.assertLit(Blaster.disequal(WA, WB));
    CtrEncodeVars.add(Solver.numVars());
    CtrEncodeClauses.add(Solver.stats().ClausesAdded);

    sat::Budget Limits;
    // Leave whatever time encoding took to the search.
    Limits.MaxSeconds = std::max(0.0, TimeoutSeconds - Timer.seconds());
    sat::SatResult R = Solver.solve(Limits);

    CheckResult Result;
    Result.Seconds = Timer.seconds();
    switch (R) {
    case sat::SatResult::Unsat:
      Result.Outcome = Verdict::Equivalent;
      break;
    case sat::SatResult::Sat:
      Result.Outcome = Verdict::NotEquivalent;
      break;
    case sat::SatResult::Unknown:
      Result.Outcome = Verdict::Timeout;
      break;
    }
    if (querylog::Record *QR = querylog::active()) {
      QR->num("cnf_vars", Solver.numVars());
      QR->num("cnf_clauses", Solver.stats().ClausesAdded);
      QR->num("sat_conflicts", Solver.stats().Conflicts);
      QR->num("sat_decisions", Solver.stats().Decisions);
      QR->num("sat_propagations", Solver.stats().Propagations);
      QR->str("verdict", verdictName(Result.Outcome));
    }
    return Result;
  }

private:
  bool Rewriting;
};

} // namespace

std::unique_ptr<EquivalenceChecker> mba::makeBlastChecker(bool EnableRewriting) {
  return std::make_unique<BlastChecker>(EnableRewriting);
}

std::vector<std::unique_ptr<EquivalenceChecker>>
mba::makeAllCheckers(bool IncrementalAig) {
  std::vector<std::unique_ptr<EquivalenceChecker>> Checkers;
  if (auto Z3 = makeZ3Checker())
    Checkers.push_back(std::move(Z3));
  Checkers.push_back(makeBlastChecker(false));
  Checkers.push_back(makeBlastChecker(true));
  Checkers.push_back(makeAigChecker(IncrementalAig));
  return Checkers;
}
