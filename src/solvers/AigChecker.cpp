//===- solvers/AigChecker.cpp - AIG + incremental-SAT backend -------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fourth in-tree backend, "BlastBV+AIG": word-level encodings built on
/// the And-Inverter Graph (carry-lookahead adders, carry-save-array
/// multiplier, structural hashing with two-level rewriting) feeding one
/// *persistent* incremental CDCL solver.
///
/// Per query, the protocol is:
///
///   1. translate both sides onto the shared AIG (strashing dedups every
///      subterm ever seen by this checker, across queries);
///   2. build the miter literal `lhs != rhs`; if rewriting collapsed it to
///      a constant, answer without touching SAT at all;
///   3. otherwise encode only the not-yet-encoded cone (the CnfEmitter's
///      node-to-variable map persists), allocate a fresh guard variable g,
///      add the clause (~g | root), and solve under the single assumption
///      g — learnt clauses, VSIDS activity, and saved phases carry over
///      from every earlier query;
///   4. retire the query with the unit clause ~g, permanently satisfying
///      its guard clause and every learnt clause that depended on it.
///
/// UNSAT under the assumption means the miter is unsatisfiable, i.e. the
/// sides are equivalent; it does NOT mark the shared instance proven-unsat
/// (Solver::solve(assumptions) guarantees that), so the solver survives
/// arbitrarily many queries.
///
/// The solver and emitter are recycled every kResetWindow queries: retired
/// cones stay attached to the shared input variables and propagation costs
/// grow linearly with their number, so unbounded persistence loses more to
/// dead-cone traffic than cross-query learning wins (measured; see the
/// comment at the reset site). The AIG itself is never reset.
///
/// Ownership/threading: a checker instance is stateful and single-owner,
/// exactly like the Context it serves — the harness builds one checker set
/// per worker thread via its CheckerFactory, so each worker shares one
/// incremental solver across its whole slice of the study and nothing is
/// shared across threads.
///
//===----------------------------------------------------------------------===//

#include "solvers/EquivalenceChecker.h"

#include "aig/Aig.h"
#include "aig/AigBlaster.h"
#include "aig/ExprAig.h"
#include "support/QueryLog.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"

using namespace mba;

namespace {

class AigChecker : public EquivalenceChecker {
public:
  explicit AigChecker(bool Incremental) : Incremental(Incremental) {}

  std::string name() const override { return "BlastBV+AIG"; }

  CheckResult check(const Context &Ctx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) override {
    MBA_TRACE_SPAN("solve.backend.BlastBV+AIG");
    // Query accounting: every query is either decided structurally by the
    // AIG rewriting layer (`sat.aig.short_circuit` — SAT never runs) or
    // reaches exactly one solve call, counted under the mode that actually
    // ran it (`sat.incremental.assumption_solves` for the guarded
    // persistent solver, `sat.fresh.solves` for per-query solvers). So
    //   sat.aig.queries == short_circuit + assumption_solves + fresh
    // holds by construction; a report showing assumption_solves == 0 next
    // to a large short_circuit count means the rewriter decided everything
    // before SAT, not that the incremental path is broken.
    static telemetry::Counter &CtrQueries = telemetry::counter("sat.aig.queries");
    static telemetry::Counter &CtrShortCircuit =
        telemetry::counter("sat.aig.short_circuit");
    static telemetry::Counter &CtrAssumptionSolves =
        telemetry::counter("sat.incremental.assumption_solves");
    static telemetry::Counter &CtrFreshSolves =
        telemetry::counter("sat.fresh.solves");
    static telemetry::Counter &CtrClausesReused =
        telemetry::counter("sat.incremental.clauses_reused");
    static telemetry::Counter &CtrRetired =
        telemetry::counter("sat.incremental.queries_retired");
    static telemetry::Counter &CtrEncodeVars =
        telemetry::counter("sat.encode.vars");
    static telemetry::Counter &CtrEncodeClauses =
        telemetry::counter("sat.encode.clauses");
    CtrQueries.add();

    // Same-kind scope: pass-through under a staged checker (fields land in
    // its record), a record of its own when the backend runs unstaged.
    querylog::QueryScope LogScope("check");
    if (querylog::Record *QR = querylog::active()) {
      QR->str("backend", name());
      QR->num("width", Ctx.width());
      QR->str("solve_mode", Incremental ? "incremental" : "fresh");
    }

    Stopwatch Timer;
    if (!State || State->Width != Ctx.width())
      State = std::make_unique<SolverState>(Ctx.width());
    assert((!State->Bound || State->Bound == &Ctx) &&
           "one incremental checker serves one Context");
    State->Bound = &Ctx;

    // The AIG above is immortal — strash hits and rewrite short-circuits
    // only get better with age. SAT state is not: every retired query
    // leaves its encoded cone hanging off the shared input variables, and
    // unit propagation cascades into those dead cones on every restart.
    // Measured on a 200-query corpus, solve time grows linearly with the
    // number of retained queries while cross-query learning holds conflict
    // counts flat, so the solver and emitter are recycled every
    // kResetWindow queries (every query in fresh mode).
    if (!State->SolverLive() ||
        State->QueriesSinceReset >= (Incremental ? kResetWindow : 1u))
      State->resetSolver();
    ++State->QueriesSinceReset;

    auto WA = State->Translator.blast(A);
    auto WB = State->Translator.blast(B);
    aig::AigLit Root = State->Blaster.disequalLit(WA, WB);

    CheckResult Result;
    if (Root == aig::Aig::falseLit() || Root == aig::Aig::trueLit()) {
      // Rewriting decided the query structurally; SAT never runs.
      CtrShortCircuit.add();
      Result.Outcome = Root == aig::Aig::falseLit() ? Verdict::Equivalent
                                                    : Verdict::NotEquivalent;
      Result.Seconds = Timer.seconds();
      if (querylog::Record *QR = querylog::active()) {
        QR->flag("aig_short_circuit", true);
        QR->num("aig_nodes", State->Graph.numNodes());
        QR->str("verdict", verdictName(Result.Outcome));
      }
      return Result;
    }

    sat::SatSolver &Solver = *State->Solver;
    uint64_t VarsBefore = Solver.numVars();
    uint64_t ClausesBefore = Solver.stats().ClausesAdded;
    uint64_t ConflictsBefore = Solver.stats().Conflicts;
    uint64_t DecisionsBefore = Solver.stats().Decisions;
    uint64_t PropagationsBefore = Solver.stats().Propagations;
    sat::Lit RootLit = State->Emitter->emit(Root);

    // Guard the root behind a per-query assumption literal.
    sat::Lit Guard(Solver.newVar(), false);
    Solver.addClause({~Guard, RootLit});
    CtrEncodeVars.add(Solver.numVars() - VarsBefore);
    CtrEncodeClauses.add(Solver.stats().ClausesAdded - ClausesBefore);

    // Pull this query's cone to the front of the branching order; stale
    // activity from retired queries otherwise wins every early decision.
    State->ConeVars.clear();
    State->Emitter->appendConeVars(Root, State->ConeVars);
    State->ConeVars.push_back(Guard.var());
    Solver.seedActivity(State->ConeVars);

    sat::Budget Limits;
    Limits.MaxSeconds = std::max(0.0, TimeoutSeconds - Timer.seconds());
    uint64_t ReusedBefore = Solver.stats().ReusedLearnts;
    sat::Lit Assumptions[1] = {Guard};
    sat::SatResult R = Solver.solve(Assumptions, Limits);
    if (Incremental) {
      CtrAssumptionSolves.add();
      CtrClausesReused.add(Solver.stats().ReusedLearnts - ReusedBefore);
    } else {
      // Fresh mode resets the solver before every query, so the guarded
      // solve carries nothing across queries; counting it as an
      // "incremental" assumption solve would overstate the shared-solver
      // path in reports.
      CtrFreshSolves.add();
    }

    // Retire the query: ~Guard satisfies its clauses for good, and
    // simplify() sweeps them (plus any learnt clauses that mention the
    // guard) out of the watch lists so dead queries cost nothing later.
    // (In fresh mode the whole solver is discarded before the next query,
    // so there is no retirement to report.)
    Solver.addClause({~Guard});
    Solver.simplify();
    if (Incremental)
      CtrRetired.add();

    Result.Seconds = Timer.seconds();
    switch (R) {
    case sat::SatResult::Unsat:
      Result.Outcome = Verdict::Equivalent;
      break;
    case sat::SatResult::Sat:
      Result.Outcome = Verdict::NotEquivalent;
      break;
    case sat::SatResult::Unknown:
      Result.Outcome = Verdict::Timeout;
      break;
    }
    if (querylog::Record *QR = querylog::active()) {
      QR->flag("aig_short_circuit", false);
      QR->num("aig_nodes", State->Graph.numNodes());
      QR->num("cnf_vars", Solver.numVars() - VarsBefore);
      QR->num("cnf_clauses", Solver.stats().ClausesAdded - ClausesBefore);
      QR->num("sat_conflicts", Solver.stats().Conflicts - ConflictsBefore);
      QR->num("sat_decisions", Solver.stats().Decisions - DecisionsBefore);
      QR->num("sat_propagations",
              Solver.stats().Propagations - PropagationsBefore);
      QR->num("sat_clauses_reused",
              Solver.stats().ReusedLearnts - ReusedBefore);
      QR->str("verdict", verdictName(Result.Outcome));
    }
    return Result;
  }

private:
  struct SolverState {
    unsigned Width;
    aig::Aig Graph;
    aig::AigBlaster Blaster;
    aig::ExprAig Translator;
    std::unique_ptr<sat::SatSolver> Solver;
    std::unique_ptr<aig::CnfEmitter> Emitter;
    unsigned QueriesSinceReset = 0;
    std::vector<sat::Var> ConeVars; // per-query scratch for seedActivity
    const Context *Bound = nullptr;

    explicit SolverState(unsigned W)
        : Width(W), Blaster(Graph, W), Translator(Blaster) {}

    bool SolverLive() const { return Solver != nullptr; }

    /// Fresh SAT state under the same (immortal) AIG: the emitter's
    /// node-to-variable map restarts empty, so the next query re-encodes
    /// its cone against the new solver.
    void resetSolver() {
      Solver = std::make_unique<sat::SatSolver>();
      Emitter = std::make_unique<aig::CnfEmitter>(Graph, *Solver);
      QueriesSinceReset = 0;
    }
  };

  /// Incremental-mode recycling period, in queries. Within a window,
  /// queries share encoded cones and guard-free learnt clauses; across
  /// windows the accumulated dead structure is dropped. Eight is the
  /// measured knee: larger windows only add propagation work into retired
  /// cones without reducing conflicts.
  static constexpr unsigned kResetWindow = 8;

  bool Incremental;
  std::unique_ptr<SolverState> State;
};

} // namespace

std::unique_ptr<EquivalenceChecker> mba::makeAigChecker(bool Incremental) {
  return std::make_unique<AigChecker>(Incremental);
}
