//===- aig/Aig.cpp - And-Inverter Graph with structural hashing -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aig/Aig.h"

#include "support/Telemetry.h"

using namespace mba;
using namespace mba::aig;

namespace {
telemetry::Counter &ctrNodes() {
  static telemetry::Counter &C = telemetry::counter("aig.nodes");
  return C;
}
telemetry::Counter &ctrStrashHits() {
  static telemetry::Counter &C = telemetry::counter("aig.strash_hits");
  return C;
}
telemetry::Counter &ctrRewrites() {
  static telemetry::Counter &C = telemetry::counter("aig.rewrites");
  return C;
}
telemetry::Counter &ctrConstFolds() {
  static telemetry::Counter &C = telemetry::counter("aig.const_folds");
  return C;
}
} // namespace

AigLit Aig::mkAnd(AigLit A, AigLit B) {
  // Level 1: constants and trivial sharing.
  if (A == falseLit() || B == falseLit() || A == ~B) {
    ++St.ConstFolds;
    ctrConstFolds().add();
    return falseLit();
  }
  if (A == trueLit())
    return B;
  if (B == trueLit())
    return A;
  if (A == B)
    return A;

  // Level 2: one level of fanin lookahead (Brummayer & Biere's rules).
  // and(and(x,y), b): contradiction and idempotence/absorption.
  for (int Side = 0; Side != 2; ++Side) {
    AigLit P = Side ? B : A, Other = Side ? A : B;
    if (!isPosAnd(P))
      continue;
    AigLit X = fanin0(P.node()), Y = fanin1(P.node());
    if (Other == ~X || Other == ~Y) {
      ++St.Rewrites;
      ++St.ConstFolds;
      ctrRewrites().add();
      ctrConstFolds().add();
      return falseLit();
    }
    if (Other == X || Other == Y) {
      ++St.Rewrites;
      ctrRewrites().add();
      return P;
    }
  }
  // and(~and(x,y), b): subsumption and substitution.
  for (int Side = 0; Side != 2; ++Side) {
    AigLit P = Side ? B : A, Other = Side ? A : B;
    if (!isNegAnd(P))
      continue;
    AigLit X = fanin0(P.node()), Y = fanin1(P.node());
    if (Other == ~X || Other == ~Y) {
      // b implies ~and(x,y) already.
      ++St.Rewrites;
      ctrRewrites().add();
      return Other;
    }
    if (Other == X) {
      // ~(x&y) & x == x & ~y.
      ++St.Rewrites;
      ctrRewrites().add();
      return mkAnd(X, ~Y);
    }
    if (Other == Y) {
      ++St.Rewrites;
      ctrRewrites().add();
      return mkAnd(Y, ~X);
    }
  }
  // and(and(x,y), and(u,v)): contradiction across the grandchildren.
  if (isPosAnd(A) && isPosAnd(B)) {
    AigLit X = fanin0(A.node()), Y = fanin1(A.node());
    AigLit U = fanin0(B.node()), V = fanin1(B.node());
    if (X == ~U || X == ~V || Y == ~U || Y == ~V) {
      ++St.Rewrites;
      ++St.ConstFolds;
      ctrRewrites().add();
      ctrConstFolds().add();
      return falseLit();
    }
  }
  // and(~and(x,y), ~and(u,v)): resolution — ~(x&y) & ~(x&~y) == ~x.
  if (isNegAnd(A) && isNegAnd(B)) {
    AigLit X = fanin0(A.node()), Y = fanin1(A.node());
    AigLit U = fanin0(B.node()), V = fanin1(B.node());
    if ((X == U && Y == ~V) || (X == V && Y == ~U)) {
      ++St.Rewrites;
      ctrRewrites().add();
      return ~X;
    }
    if ((Y == U && X == ~V) || (Y == V && X == ~U)) {
      ++St.Rewrites;
      ctrRewrites().add();
      return ~Y;
    }
  }

  // Canonical operand order, then the structural hash.
  if (B < A)
    std::swap(A, B);
  uint64_t Key = (uint64_t)A.code() << 32 | B.code();
  auto [It, Inserted] = Strash.try_emplace(Key, 0);
  if (!Inserted) {
    ++St.StrashHits;
    ctrStrashHits().add();
    return AigLit(It->second, false);
  }
  uint32_t N = (uint32_t)Nodes.size();
  Nodes.push_back(Node{A.code(), B.code()});
  It->second = N;
  ++St.AndNodes;
  ctrNodes().add();
  return AigLit(N, false);
}

XorMux Aig::matchXorMux(uint32_t N) const {
  if (!isAnd(N))
    return XorMux();
  AigLit L = fanin0(N), R = fanin1(N);
  if (!isNegAnd(L) || !isNegAnd(R))
    return XorMux();
  AigLit A0 = fanin0(L.node()), A1 = fanin1(L.node());
  AigLit B0 = fanin0(R.node()), B1 = fanin1(R.node());
  // N = ~(a&b) & ~(~a&~b) == a ^ b. (Check before MUX: the XOR shape also
  // matches the MUX shape.)
  if ((B0 == ~A0 && B1 == ~A1) || (B0 == ~A1 && B1 == ~A0))
    return XorMux{XorMux::Xor, A0, A1, AigLit()};
  // N = ~(s&t) & ~(~s&e) == ~(s ? t : e), for a selector shared in
  // opposite polarity.
  if (B0 == ~A0)
    return XorMux{XorMux::Mux, A0, A1, B1};
  if (B1 == ~A0)
    return XorMux{XorMux::Mux, A0, A1, B0};
  if (B0 == ~A1)
    return XorMux{XorMux::Mux, A1, A0, B1};
  if (B1 == ~A1)
    return XorMux{XorMux::Mux, A1, A0, B0};
  return XorMux();
}

void Aig::simulate(std::span<const uint64_t> InputPatterns,
                   std::vector<uint64_t> &Values) const {
  assert(InputPatterns.size() >= NumInputs && "pattern per input required");
  Values.assign(Nodes.size(), 0);
  for (uint32_t N = 1; N != Nodes.size(); ++N) {
    const Node &Nd = Nodes[N];
    if (Nd.F0 == InvalidCode) {
      Values[N] = InputPatterns[Nd.F1];
      continue;
    }
    AigLit F0 = AigLit::fromCode(Nd.F0), F1 = AigLit::fromCode(Nd.F1);
    uint64_t V0 = Values[F0.node()], V1 = Values[F1.node()];
    if (F0.complemented())
      V0 = ~V0;
    if (F1.complemented())
      V1 = ~V1;
    Values[N] = V0 & V1;
  }
}

sat::Lit CnfEmitter::emit(AigLit L) {
  static telemetry::Counter &CtrXor = telemetry::counter("aig.xor_detected");
  static telemetry::Counter &CtrMux = telemetry::counter("aig.mux_detected");

  if (NodeLit.size() < G.numNodes())
    NodeLit.resize(G.numNodes(), sat::Lit());
  if (NodeLit[L.node()].valid()) {
    ++Hits;
    return litOf(L);
  }

  Stack.clear();
  Stack.push_back(L.node());
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    if (NodeLit[N].valid()) { // duplicate stack entry
      Stack.pop_back();
      continue;
    }
    if (G.isConst(N)) {
      sat::Var V = S.newVar();
      S.addClause({sat::Lit(V, true)});
      NodeLit[N] = sat::Lit(V, false); // constrained false
      Stack.pop_back();
      continue;
    }
    if (G.isInput(N)) {
      NodeLit[N] = sat::Lit(S.newVar(), false);
      Stack.pop_back();
      continue;
    }

    XorMux M = G.matchXorMux(N);
    bool Pending = false;
    auto Need = [&](AigLit X) {
      if (!NodeLit[X.node()].valid()) {
        Stack.push_back(X.node());
        Pending = true;
      }
    };
    if (M.K == XorMux::Xor) {
      Need(M.A);
      Need(M.B);
    } else if (M.K == XorMux::Mux) {
      Need(M.A);
      Need(M.B);
      Need(M.C);
    } else {
      Need(G.fanin0(N));
      Need(G.fanin1(N));
    }
    if (Pending)
      continue;

    sat::Lit NL(S.newVar(), false);
    if (M.K == XorMux::Xor) {
      CtrXor.add();
      sat::Lit A = litOf(M.A), B = litOf(M.B);
      // NL <-> A ^ B in four clauses (vs 9 for the 3-AND cone).
      S.addClause({~A, ~B, ~NL});
      S.addClause({A, B, ~NL});
      S.addClause({A, ~B, NL});
      S.addClause({~A, B, NL});
    } else if (M.K == XorMux::Mux) {
      CtrMux.add();
      sat::Lit Sel = litOf(M.A), T = litOf(M.B), E = litOf(M.C);
      // NL <-> ~(Sel ? T : E).
      S.addClause({~Sel, ~T, ~NL});
      S.addClause({~Sel, T, NL});
      S.addClause({Sel, ~E, ~NL});
      S.addClause({Sel, E, NL});
    } else {
      sat::Lit A = litOf(G.fanin0(N)), B = litOf(G.fanin1(N));
      // NL <-> A & B.
      S.addClause({~NL, A});
      S.addClause({~NL, B});
      S.addClause({NL, ~A, ~B});
    }
    NodeLit[N] = NL;
    Stack.pop_back();
  }
  return litOf(L);
}

void CnfEmitter::appendConeVars(AigLit Root, std::vector<sat::Var> &Out) {
  // Unlike emit(), this descends through already-encoded nodes: the live
  // cone of a query includes structure shared with earlier queries, and
  // those variables need re-seeding just as much as the new ones.
  SeenEpoch.resize(G.numNodes(), 0);
  ++Epoch;
  Stack.clear();
  Stack.push_back(Root.node());
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (SeenEpoch[N] == Epoch)
      continue;
    SeenEpoch[N] = Epoch;
    assert(N < NodeLit.size() && NodeLit[N].valid() &&
           "appendConeVars before emit");
    Out.push_back(NodeLit[N].var());
    if (!G.isAnd(N))
      continue;
    // Mirror emit()'s shape detection (a pure function of the node): the
    // inner ANDs of an XOR/MUX encoding never received variables.
    XorMux M = G.matchXorMux(N);
    if (M.K == XorMux::Xor) {
      Stack.push_back(M.A.node());
      Stack.push_back(M.B.node());
    } else if (M.K == XorMux::Mux) {
      Stack.push_back(M.A.node());
      Stack.push_back(M.B.node());
      Stack.push_back(M.C.node());
    } else {
      Stack.push_back(G.fanin0(N).node());
      Stack.push_back(G.fanin1(N).node());
    }
  }
}
