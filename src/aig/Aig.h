//===- aig/Aig.h - And-Inverter Graph with structural hashing ---*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An And-Inverter Graph (AIG) layer between word-level circuit
/// construction and CNF, in the style competition bit-vector solvers
/// (Boolector, Bitwuzla) use under their bit-blasters:
///
///  * every gate is a 2-input AND with complemented-edge literals, so one
///    hash table (the *strash*) deduplicates identical gates across the
///    whole query — both sides of an equivalence miter share structure by
///    construction;
///  * mkAnd applies constant propagation plus the classic bounded
///    two-level rewrite rules (contradiction, subsumption/absorption,
///    idempotence, substitution, resolution — Brummayer & Biere, "Local
///    Two-Level And-Inverter Graph Minimization without Blowup"), so many
///    miters collapse to a constant and never reach SAT at all;
///  * CNF emission (CnfEmitter) is *incremental*: the node-to-SAT-variable
///    map persists across queries against one solver, detects XOR/MUX
///    shapes structurally, and encodes only the not-yet-encoded cone of
///    each new root.
///
/// Node 0 is the constant-false node; an AigLit packs (node << 1 |
/// complement), so literal 0 is false and literal 1 is true. Fanins always
/// point to lower node indices, so node order is a topological order —
/// simulation and emission walk it linearly.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AIG_AIG_H
#define MBA_AIG_AIG_H

#include "sat/Solver.h"

#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace mba::aig {

/// An AIG edge: node index plus complement bit, packed like a SAT literal.
class AigLit {
public:
  constexpr AigLit() : Code(0) {} // constant false
  constexpr AigLit(uint32_t Node, bool Complement)
      : Code(Node << 1 | (Complement ? 1 : 0)) {}

  static constexpr AigLit fromCode(uint32_t Code) {
    AigLit L;
    L.Code = Code;
    return L;
  }

  constexpr uint32_t node() const { return Code >> 1; }
  constexpr bool complemented() const { return Code & 1; }
  constexpr uint32_t code() const { return Code; }
  constexpr AigLit operator~() const { return fromCode(Code ^ 1); }

  constexpr bool operator==(const AigLit &O) const { return Code == O.Code; }
  constexpr bool operator!=(const AigLit &O) const { return Code != O.Code; }
  constexpr bool operator<(const AigLit &O) const { return Code < O.Code; }

private:
  uint32_t Code;
};

/// Counters of the AIG construction fast paths (always maintained; the
/// telemetry registry mirrors them under aig.* when metrics are enabled).
struct AigStats {
  uint64_t AndNodes = 0;   ///< AND nodes physically created
  uint64_t StrashHits = 0; ///< mkAnd answered from the structural hash
  uint64_t Rewrites = 0;   ///< two-level rewrite rules applied
  uint64_t ConstFolds = 0; ///< mkAnd calls folded to a constant
};

/// A structural XOR/MUX match over an AND node (see Aig::matchXorMux).
struct XorMux {
  enum Kind : uint8_t { None, Xor, Mux } K = None;
  AigLit A, B, C; ///< Xor: node == A ^ B. Mux: node == ~(A ? B : C).
};

/// The graph. Append-only: nodes are never removed, rewriting happens at
/// construction time by returning an existing literal instead of building
/// a new node.
class Aig {
public:
  Aig() {
    Nodes.push_back(Node()); // node 0: constant false
  }

  static constexpr AigLit falseLit() { return AigLit(0, false); }
  static constexpr AigLit trueLit() { return AigLit(0, true); }

  /// Creates a fresh primary input.
  AigLit mkInput() {
    uint32_t N = (uint32_t)Nodes.size();
    Nodes.push_back(Node{InvalidCode, NumInputs++});
    return AigLit(N, false);
  }

  /// AND with structural hashing, constant propagation, and bounded
  /// two-level rewriting.
  AigLit mkAnd(AigLit A, AigLit B);

  AigLit mkOr(AigLit A, AigLit B) { return ~mkAnd(~A, ~B); }
  AigLit mkXor(AigLit A, AigLit B) {
    return ~mkAnd(~mkAnd(A, ~B), ~mkAnd(~A, B));
  }
  /// S ? T : E.
  AigLit mkMux(AigLit S, AigLit T, AigLit E) {
    return ~mkAnd(~mkAnd(S, T), ~mkAnd(~S, E));
  }

  size_t numNodes() const { return Nodes.size(); }
  uint32_t numInputs() const { return NumInputs; }

  bool isConst(uint32_t N) const { return N == 0; }
  bool isInput(uint32_t N) const {
    return N != 0 && Nodes[N].F0 == InvalidCode;
  }
  bool isAnd(uint32_t N) const { return Nodes[N].F0 != InvalidCode; }

  AigLit fanin0(uint32_t N) const {
    assert(isAnd(N));
    return AigLit::fromCode(Nodes[N].F0);
  }
  AigLit fanin1(uint32_t N) const {
    assert(isAnd(N));
    return AigLit::fromCode(Nodes[N].F1);
  }
  /// Creation index of input node \p N (its slot in simulate()'s patterns).
  uint32_t inputOrdinal(uint32_t N) const {
    assert(isInput(N));
    return Nodes[N].F1;
  }

  /// If AND node \p N structurally computes an XOR or a (complemented) MUX
  /// of grandchild literals, returns the classification; the CNF emitter
  /// uses it to encode 4 clauses over the leaves instead of 9 over the
  /// 3-AND cone.
  XorMux matchXorMux(uint32_t N) const;

  const AigStats &stats() const { return St; }

  /// 64-way bit-parallel simulation: lane k of \p InputPatterns[i] is the
  /// value of input i in test vector k. \p Values receives one 64-lane
  /// word per node. Used by the exhaustive agreement tests.
  void simulate(std::span<const uint64_t> InputPatterns,
                std::vector<uint64_t> &Values) const;

  /// Reads literal \p L out of a simulate() result.
  static uint64_t simValue(const std::vector<uint64_t> &Values, AigLit L) {
    uint64_t V = Values[L.node()];
    return L.complemented() ? ~V : V;
  }

private:
  static constexpr uint32_t InvalidCode = UINT32_MAX;

  /// For AND nodes F0/F1 are fanin literal codes (F0 <= F1 after
  /// canonicalization); inputs are marked with F0 == InvalidCode and carry
  /// their ordinal in F1; node 0 (constant) has both invalid.
  struct Node {
    uint32_t F0 = InvalidCode;
    uint32_t F1 = InvalidCode;
  };

  bool isPosAnd(AigLit L) const { return !L.complemented() && isAnd(L.node()); }
  bool isNegAnd(AigLit L) const { return L.complemented() && isAnd(L.node()); }

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, uint32_t> Strash;
  uint32_t NumInputs = 0;
  AigStats St;
};

/// Incremental Tseitin encoder over a persistent solver: the node-to-lit
/// map survives across emit() calls, so when successive queries share AIG
/// structure (the common case in a corpus study — the strash guarantees
/// sharing), only the genuinely new cone gets fresh variables and clauses.
class CnfEmitter {
public:
  CnfEmitter(const Aig &G, sat::SatSolver &S) : G(G), S(S) {}

  /// Returns a SAT literal constrained equivalent to \p L, emitting the
  /// not-yet-encoded part of its cone.
  sat::Lit emit(AigLit L);

  /// Nodes whose encoding was answered by the persistent map (cross-query
  /// structure sharing at the CNF level).
  uint64_t cacheHits() const { return Hits; }

  /// Appends the SAT variables of \p Root's emitted cone to \p Out
  /// (mirrors emit()'s traversal, so XOR/MUX-internal nodes that never
  /// received a variable are skipped). Incremental front ends seed these
  /// into the solver's branching order each query: without it, stale VSIDS
  /// activity from retired queries dominates and every restart descends
  /// through dead variables before reaching the live cone. Must be called
  /// after emit(\p Root).
  void appendConeVars(AigLit Root, std::vector<sat::Var> &Out);

private:
  sat::Lit litOf(AigLit L) const {
    sat::Lit Base = NodeLit[L.node()];
    return L.complemented() ? ~Base : Base;
  }

  const Aig &G;
  sat::SatSolver &S;
  std::vector<sat::Lit> NodeLit; // per node; invalid = not yet encoded
  std::vector<uint32_t> Stack;   // DFS scratch
  std::vector<uint32_t> SeenEpoch; // appendConeVars visit marks
  uint32_t Epoch = 0;
  uint64_t Hits = 0;
};

} // namespace mba::aig

#endif // MBA_AIG_AIG_H
