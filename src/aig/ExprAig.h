//===- aig/ExprAig.h - MBA expressions to AIG words -------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates MBA expressions into AIG words, mirroring
/// bitblast/ExprBlaster: each variable gets one input word shared across
/// every expression translated through the same ExprAig, so both sides of
/// an equivalence query see identical inputs — and, because the memo and
/// the graph persist, queries translated later reuse the words (and hence
/// the CNF) of every subterm seen before.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AIG_EXPRAIG_H
#define MBA_AIG_EXPRAIG_H

#include "aig/AigBlaster.h"
#include "ast/Context.h"
#include "ast/Expr.h"

#include <unordered_map>

namespace mba::aig {

/// Expression-to-AIG translator with DAG sharing.
class ExprAig {
public:
  ExprAig(AigBlaster &Blaster) : Blaster(Blaster) {}

  /// Returns the word computing \p E. Shared sub-DAGs translate once —
  /// including across calls, so a corpus of related queries amortizes.
  AigBlaster::Word blast(const Expr *E);

  /// The input word assigned to variable \p V (created on first use).
  const AigBlaster::Word &inputWord(const Expr *V);

private:
  AigBlaster &Blaster;
  std::unordered_map<const Expr *, AigBlaster::Word> Memo;
  std::unordered_map<const Expr *, AigBlaster::Word> Inputs;
};

} // namespace mba::aig

#endif // MBA_AIG_EXPRAIG_H
