//===- aig/AigBlaster.h - Word-level encodings over the AIG -----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-vector operations lowered onto the AIG, replacing the ripple-carry
/// encodings of bitblast/BitBlaster with the circuit shapes competition
/// solvers use:
///
///  * **Addition/subtraction**: a Brent-Kung parallel-prefix carry-
///    lookahead adder — per-bit generate/propagate, a prefix tree over
///    (G, P) pairs, depth 2*log2(W) instead of the ripple chain's W. (See
///    SNIPPETS.md's carry-lookahead exemplar; the prefix form scales it.)
///  * **Multiplication**: a carry-save array — partial products feed a
///    3:2-compressor tree that keeps sums and carries separate, with one
///    final carry-lookahead addition; no intermediate carry chains.
///
/// All gates route through Aig::mkAnd, so structural hashing and the
/// two-level rewrites apply across every word built against one graph —
/// an equivalence miter whose sides share subterms shares their circuits.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_AIG_AIGBLASTER_H
#define MBA_AIG_AIGBLASTER_H

#include "aig/Aig.h"

#include <cstdint>
#include <vector>

namespace mba::aig {

/// Word-level operations over an AIG, LSB-first like BitBlaster::Word.
class AigBlaster {
public:
  using Word = std::vector<AigLit>;

  AigBlaster(Aig &G, unsigned Width) : G(G), Width(Width) {}

  unsigned width() const { return Width; }

  /// A word of fresh primary inputs.
  Word freshWord();

  /// The constant \p Value truncated to the width.
  Word constWord(uint64_t Value) const;

  Word bvNot(const Word &A) const;
  Word bvAnd(const Word &A, const Word &B);
  Word bvOr(const Word &A, const Word &B);
  Word bvXor(const Word &A, const Word &B);

  /// Carry-lookahead (Brent-Kung prefix) addition mod 2^Width.
  Word bvAdd(const Word &A, const Word &B) {
    return addWithCarry(A, B, Aig::falseLit());
  }
  /// A - B as A + ~B + 1 through the same prefix adder.
  Word bvSub(const Word &A, const Word &B) {
    return addWithCarry(A, bvNot(B), Aig::trueLit());
  }
  /// Two's-complement negation (~A + 1).
  Word bvNeg(const Word &A) {
    return addWithCarry(constWord(0), bvNot(A), Aig::trueLit());
  }

  /// Carry-save-array multiplication mod 2^Width.
  Word bvMul(const Word &A, const Word &B);

  /// Single literal: true iff A == B bitwise.
  AigLit equalLit(const Word &A, const Word &B);
  /// Single literal: true iff A != B — the miter root of an equivalence
  /// query (UNSAT means equivalent).
  AigLit disequalLit(const Word &A, const Word &B) {
    return ~equalLit(A, B);
  }

private:
  Word addWithCarry(const Word &A, const Word &B, AigLit CarryIn);
  /// In-place Brent-Kung prefix scan over (generate, propagate) pairs:
  /// on return Gen[i]/Prop[i] cover bit range [0..i].
  void prefixScan(std::vector<AigLit> &Gen, std::vector<AigLit> &Prop);

  Aig &G;
  unsigned Width;
};

} // namespace mba::aig

#endif // MBA_AIG_AIGBLASTER_H
