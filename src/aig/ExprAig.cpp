//===- aig/ExprAig.cpp - MBA expressions to AIG words ---------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aig/ExprAig.h"

#include "ast/ExprUtils.h"

using namespace mba;
using namespace mba::aig;

const AigBlaster::Word &ExprAig::inputWord(const Expr *V) {
  assert(V->isVar() && "inputs are variables");
  auto It = Inputs.find(V);
  if (It == Inputs.end())
    It = Inputs.emplace(V, Blaster.freshWord()).first;
  return It->second;
}

AigBlaster::Word ExprAig::blast(const Expr *E) {
  // Iterative post-order so deep expressions cannot overflow the stack.
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (Memo.find(N) != Memo.end())
      return;
    AigBlaster::Word W;
    switch (N->kind()) {
    case ExprKind::Var:
      W = inputWord(N);
      break;
    case ExprKind::Const:
      W = Blaster.constWord(N->constValue());
      break;
    case ExprKind::Not:
      W = Blaster.bvNot(Memo.at(N->operand()));
      break;
    case ExprKind::Neg:
      W = Blaster.bvNeg(Memo.at(N->operand()));
      break;
    case ExprKind::Add:
      W = Blaster.bvAdd(Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    case ExprKind::Sub:
      W = Blaster.bvSub(Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    case ExprKind::Mul:
      W = Blaster.bvMul(Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    case ExprKind::And:
      W = Blaster.bvAnd(Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    case ExprKind::Or:
      W = Blaster.bvOr(Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    case ExprKind::Xor:
      W = Blaster.bvXor(Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    }
    Memo.emplace(N, std::move(W));
  });
  return Memo.at(E);
}
