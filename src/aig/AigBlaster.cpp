//===- aig/AigBlaster.cpp - Word-level encodings over the AIG -------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aig/AigBlaster.h"

using namespace mba;
using namespace mba::aig;

AigBlaster::Word AigBlaster::freshWord() {
  Word W(Width);
  for (unsigned I = 0; I != Width; ++I)
    W[I] = G.mkInput();
  return W;
}

AigBlaster::Word AigBlaster::constWord(uint64_t Value) const {
  Word W(Width);
  for (unsigned I = 0; I != Width; ++I)
    W[I] = (Value >> I) & 1 ? Aig::trueLit() : Aig::falseLit();
  return W;
}

AigBlaster::Word AigBlaster::bvNot(const Word &A) const {
  Word W(Width);
  for (unsigned I = 0; I != Width; ++I)
    W[I] = ~A[I];
  return W;
}

AigBlaster::Word AigBlaster::bvAnd(const Word &A, const Word &B) {
  Word W(Width);
  for (unsigned I = 0; I != Width; ++I)
    W[I] = G.mkAnd(A[I], B[I]);
  return W;
}

AigBlaster::Word AigBlaster::bvOr(const Word &A, const Word &B) {
  Word W(Width);
  for (unsigned I = 0; I != Width; ++I)
    W[I] = G.mkOr(A[I], B[I]);
  return W;
}

AigBlaster::Word AigBlaster::bvXor(const Word &A, const Word &B) {
  Word W(Width);
  for (unsigned I = 0; I != Width; ++I)
    W[I] = G.mkXor(A[I], B[I]);
  return W;
}

void AigBlaster::prefixScan(std::vector<AigLit> &Gen,
                            std::vector<AigLit> &Prop) {
  // Brent-Kung: pair adjacent (G,P) cells, recurse on the halved problem,
  // then fix up — odd indices take the recursive prefix directly, even
  // indices >= 2 combine their local cell with the prefix one pair back.
  // ~2N combine steps, depth 2*log2(N).
  size_t N = Gen.size();
  if (N <= 1)
    return;
  auto CombineG = [&](AigLit GHi, AigLit PHi, AigLit GLo) {
    return G.mkOr(GHi, G.mkAnd(PHi, GLo));
  };
  size_t Half = N / 2;
  std::vector<AigLit> HG(Half), HP(Half);
  for (size_t K = 0; K != Half; ++K) {
    HG[K] = CombineG(Gen[2 * K + 1], Prop[2 * K + 1], Gen[2 * K]);
    HP[K] = G.mkAnd(Prop[2 * K + 1], Prop[2 * K]);
  }
  prefixScan(HG, HP); // HG[K]/HP[K] now cover bits [0 .. 2K+1]
  for (size_t K = 0; K != Half; ++K) {
    Gen[2 * K + 1] = HG[K];
    Prop[2 * K + 1] = HP[K];
  }
  for (size_t I = 2; I < N; I += 2) {
    size_t K = I / 2 - 1; // prefix [0 .. I-1]
    Gen[I] = CombineG(Gen[I], Prop[I], HG[K]);
    Prop[I] = G.mkAnd(Prop[I], HP[K]);
  }
}

AigBlaster::Word AigBlaster::addWithCarry(const Word &A, const Word &B,
                                          AigLit CarryIn) {
  assert(A.size() == Width && B.size() == Width);
  std::vector<AigLit> Gen(Width), Prop(Width);
  for (unsigned I = 0; I != Width; ++I) {
    Gen[I] = G.mkAnd(A[I], B[I]);
    Prop[I] = G.mkXor(A[I], B[I]);
  }
  Word Sum(Width);
  Sum[0] = G.mkXor(Prop[0], CarryIn);
  if (Width == 1)
    return Sum;
  // Per-bit XOR consumes the local propagate, so keep a copy before the
  // scan overwrites it with range propagates.
  std::vector<AigLit> LocalProp = Prop;
  prefixScan(Gen, Prop);
  for (unsigned I = 1; I != Width; ++I) {
    // Carry into bit I: generated within [0..I-1], or propagated across it.
    AigLit Carry = G.mkOr(Gen[I - 1], G.mkAnd(Prop[I - 1], CarryIn));
    Sum[I] = G.mkXor(LocalProp[I], Carry);
  }
  return Sum;
}

AigBlaster::Word AigBlaster::bvMul(const Word &A, const Word &B) {
  assert(A.size() == Width && B.size() == Width);
  // Partial products, already truncated mod 2^Width.
  std::vector<Word> Rows;
  Rows.reserve(Width);
  for (unsigned I = 0; I != Width; ++I) {
    Word Row(Width, Aig::falseLit());
    for (unsigned J = I; J != Width; ++J)
      Row[J] = G.mkAnd(A[J - I], B[I]);
    Rows.push_back(std::move(Row));
  }
  if (Rows.empty())
    return constWord(0);
  // 3:2 compression: three rows become a sum row and a shifted carry row,
  // with no carry propagation until the single final adder.
  while (Rows.size() > 2) {
    std::vector<Word> Next;
    size_t I = 0;
    for (; I + 3 <= Rows.size(); I += 3) {
      const Word &X = Rows[I], &Y = Rows[I + 1], &Z = Rows[I + 2];
      Word Sum(Width), Carry(Width, Aig::falseLit());
      for (unsigned J = 0; J != Width; ++J) {
        AigLit XY = G.mkXor(X[J], Y[J]);
        Sum[J] = G.mkXor(XY, Z[J]);
        if (J + 1 != Width) // carry out of the top bit drops mod 2^Width
          Carry[J + 1] = G.mkOr(G.mkAnd(X[J], Y[J]), G.mkAnd(Z[J], XY));
      }
      Next.push_back(std::move(Sum));
      Next.push_back(std::move(Carry));
    }
    for (; I < Rows.size(); ++I)
      Next.push_back(std::move(Rows[I]));
    Rows = std::move(Next);
  }
  if (Rows.size() == 1)
    return Rows[0];
  return bvAdd(Rows[0], Rows[1]);
}

AigLit AigBlaster::equalLit(const Word &A, const Word &B) {
  assert(A.size() == B.size());
  // Balanced AND-tree over the per-bit XNORs keeps the depth logarithmic.
  std::vector<AigLit> Eq(A.size());
  for (size_t I = 0; I != A.size(); ++I)
    Eq[I] = ~G.mkXor(A[I], B[I]);
  if (Eq.empty())
    return Aig::trueLit();
  while (Eq.size() > 1) {
    std::vector<AigLit> Next;
    size_t I = 0;
    for (; I + 2 <= Eq.size(); I += 2)
      Next.push_back(G.mkAnd(Eq[I], Eq[I + 1]));
    if (I < Eq.size())
      Next.push_back(Eq[I]);
    Eq = std::move(Next);
  }
  return Eq[0];
}
