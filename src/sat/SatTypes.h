//===- sat/SatTypes.h - Literals, variables, clauses ------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core types of the CDCL SAT solver: variables are dense 0-based integers,
/// literals use the standard 2*var+sign packing (even = positive).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SAT_SATTYPES_H
#define MBA_SAT_SATTYPES_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mba::sat {

/// A propositional variable (dense index).
using Var = uint32_t;

constexpr Var InvalidVar = UINT32_MAX;

/// A literal: variable with sign, packed as 2*var + (negated ? 1 : 0).
class Lit {
public:
  Lit() : Code(UINT32_MAX) {}
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  static Lit fromCode(uint32_t Code) {
    Lit L;
    L.Code = Code;
    return L;
  }

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const { return fromCode(Code ^ 1); }
  uint32_t code() const { return Code; }
  bool valid() const { return Code != UINT32_MAX; }

  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
  bool operator<(const Lit &O) const { return Code < O.Code; }

private:
  uint32_t Code;
};

/// Ternary assignment value.
enum class LBool : int8_t { False = -1, Undef = 0, True = 1 };

inline LBool lboolFromBool(bool B) { return B ? LBool::True : LBool::False; }
inline LBool operator~(LBool V) { return (LBool)(-(int8_t)V); }

/// A clause: disjunction of literals plus solver bookkeeping.
struct Clause {
  std::vector<Lit> Lits;
  double Activity = 0;
  bool Learnt = false;
  bool Deleted = false;

  size_t size() const { return Lits.size(); }
  Lit &operator[](size_t I) { return Lits[I]; }
  Lit operator[](size_t I) const { return Lits[I]; }
};

/// Index of a clause in the solver's database.
using ClauseRef = uint32_t;
constexpr ClauseRef InvalidClause = UINT32_MAX;

} // namespace mba::sat

#endif // MBA_SAT_SATTYPES_H
