//===- sat/Dimacs.h - DIMACS CNF reader/writer ------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DIMACS CNF serialization for the CDCL solver: lets the bit-blasted MBA
/// instances be exported to and cross-checked against external SAT tools,
/// and provides a convenient text format for solver unit tests.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SAT_DIMACS_H
#define MBA_SAT_DIMACS_H

#include "sat/SatTypes.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mba::sat {

/// A parsed CNF: clause list over variables 0..NumVars-1. Learnt clauses
/// (implied by Clauses; exported from an incremental solver for debugging)
/// are kept separate so consumers can ignore or inspect them.
struct CnfFormula {
  unsigned NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;
  std::vector<std::vector<Lit>> LearntClauses;
};

/// Parses DIMACS text ("p cnf V C" header, clauses of nonzero integers
/// terminated by 0, 'c' comment lines). Returns std::nullopt on malformed
/// input. Variables beyond the header count grow the formula. A
/// "c learnt" comment line switches subsequent clauses into
/// CnfFormula::LearntClauses (the writeDimacs IncludeLearnt round-trip).
std::optional<CnfFormula> parseDimacs(std::string_view Text);

/// Renders \p F as DIMACS text. With \p IncludeLearnt, the learnt-clause
/// DB follows the problem clauses behind a "c learnt" marker line —
/// standard DIMACS consumers skip the comment and read the learnt clauses
/// as (sound, implied) extra clauses, while parseDimacs restores them into
/// LearntClauses. The header counts problem clauses only.
std::string writeDimacs(const CnfFormula &F, bool IncludeLearnt = false);

} // namespace mba::sat

#endif // MBA_SAT_DIMACS_H
