//===- sat/Dimacs.h - DIMACS CNF reader/writer ------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DIMACS CNF serialization for the CDCL solver: lets the bit-blasted MBA
/// instances be exported to and cross-checked against external SAT tools,
/// and provides a convenient text format for solver unit tests.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SAT_DIMACS_H
#define MBA_SAT_DIMACS_H

#include "sat/SatTypes.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mba::sat {

/// A parsed CNF: clause list over variables 0..NumVars-1.
struct CnfFormula {
  unsigned NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;
};

/// Parses DIMACS text ("p cnf V C" header, clauses of nonzero integers
/// terminated by 0, 'c' comment lines). Returns std::nullopt on malformed
/// input. Variables beyond the header count grow the formula.
std::optional<CnfFormula> parseDimacs(std::string_view Text);

/// Renders \p F as DIMACS text.
std::string writeDimacs(const CnfFormula &F);

} // namespace mba::sat

#endif // MBA_SAT_DIMACS_H
