//===- sat/Solver.h - CDCL SAT solver ---------------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-watched-literal propagation, first-UIP conflict analysis with
/// self-subsumption minimization, exponential VSIDS branching with phase
/// saving, Luby restarts, and activity-based learnt-clause deletion.
///
/// This is the engine under the in-tree bit-vector solver (bitblast/),
/// which stands in for STP and Boolector in the paper's experiments (both
/// are bit-blasting solvers over CDCL cores; see DESIGN.md on the
/// substitution). Budgets (conflicts / propagations / wall clock) provide
/// the timeout mechanism the study's tables rely on.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SAT_SOLVER_H
#define MBA_SAT_SOLVER_H

#include "sat/Heap.h"
#include "sat/SatTypes.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mba::sat {

/// Search limits; solve() returns Unknown when one is exhausted.
struct Budget {
  uint64_t MaxConflicts = UINT64_MAX;
  uint64_t MaxPropagations = UINT64_MAX;
  double MaxSeconds = 1e100;
};

/// Outcome of a solve() call.
enum class SatResult : uint8_t { Sat, Unsat, Unknown };

/// Counters exposed for the benchmark harness.
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearntClauses = 0;
  uint64_t DeletedClauses = 0;
  uint64_t ClausesAdded = 0;     ///< problem clauses presented via addClause
  uint64_t Solves = 0;           ///< solve() calls
  uint64_t AssumptionSolves = 0; ///< solve() calls with a nonempty assumption set
  uint64_t ReusedLearnts = 0;    ///< learnt clauses alive at solve() entry,
                                 ///< summed over calls (cross-query reuse)
  uint64_t SimplifiedClauses = 0; ///< clauses removed by simplify()
};

struct CnfFormula;

/// CDCL solver. Usage: newVar()/addClause() to build the instance, then
/// solve(); on Sat, modelValue() reads the model. Incremental solving is
/// supported two ways: addClause() between solve() calls (as long as no
/// solve has returned Unsat at the root), and solve-under-assumptions —
/// learnt clauses, VSIDS activities, and saved phases all persist across
/// calls, so a sequence of related queries gets cheaper as it runs.
class SatSolver {
public:
  SatSolver();

  /// Creates a fresh variable and returns it.
  Var newVar();

  unsigned numVars() const { return (unsigned)Assigns.size(); }

  /// Adds a clause (disjunction of \p Lits). Returns false if the formula
  /// became trivially unsatisfiable (empty clause or conflicting units).
  bool addClause(std::span<const Lit> Lits);
  bool addClause(std::initializer_list<Lit> Lits) {
    return addClause(std::span<const Lit>(Lits.begin(), Lits.size()));
  }

  /// Runs the CDCL loop under \p Limits.
  SatResult solve(const Budget &Limits = Budget());

  /// Runs the CDCL loop with \p Assumptions forced true for the duration of
  /// this call (MiniSat-style: they occupy the first decision levels and
  /// are retracted on return). An Unsat answer means "unsatisfiable under
  /// these assumptions" and does NOT mark the instance proven-unsat; the
  /// subset of assumptions actually used in the refutation is available
  /// from failedAssumptions(). Learnt clauses derived while assumptions
  /// were active mention their negations, so they remain sound for later
  /// calls with different assumptions.
  SatResult solve(std::span<const Lit> Assumptions,
                  const Budget &Limits = Budget());

  /// After solve(Assumptions) returned Unsat without the instance becoming
  /// proven-unsat: the subset of the passed assumptions whose conjunction
  /// was refuted (the final-conflict "unsat core" over assumptions).
  const std::vector<Lit> &failedAssumptions() const {
    return FailedAssumptions;
  }

  /// Number of live (non-deleted) learnt clauses.
  size_t numLearnts() const { return LearntCount; }

  /// Snapshot of the current clause database as a CNF formula: the root
  /// trail becomes unit clauses, stored problem clauses follow, and with
  /// \p IncludeLearnt the live learnt-clause DB is exported separately so
  /// incremental-solver state is inspectable (see writeDimacs). Must be
  /// called at the root level (i.e. outside solve(), which always returns
  /// backtracked to level 0).
  CnfFormula exportCnf(bool IncludeLearnt = false) const;

  /// Root-level garbage collection for incremental use: removes clauses
  /// satisfied by the root trail (retired guarded queries, dead learnt
  /// clauses), strips root-false literals from the rest, and re-arms the
  /// learnt-DB limit that reduceLearntDB relaxes during long searches.
  /// Call between queries, at decision level 0. Returns false if the
  /// instance is (or becomes) proven unsatisfiable.
  bool simplify();

  /// Bumps the VSIDS activity of \p Vars as if they had just appeared in a
  /// conflict, pulling them to the front of the branching order. Incremental
  /// front ends seed each query's encoded cone this way so that search
  /// focuses on the live query instead of high-activity variables left over
  /// from retired ones.
  void seedActivity(std::span<const Var> Vars);

  /// Model value of \p V after a Sat result.
  bool modelValue(Var V) const {
    assert(V < Model.size() && "no model for variable");
    return Model[V];
  }

  const SolverStats &stats() const { return Stats; }

  /// True once the clause set is known unsatisfiable regardless of budget.
  bool isProvenUnsat() const { return ProvenUnsat; }

  /// Lowers the learnt-clause limit that triggers database reduction
  /// (default 4096). Primarily a test hook to exercise the reduction path
  /// on small instances.
  void setLearntLimit(size_t Limit) { MaxLearnt = BaseMaxLearnt = Limit; }

private:
  struct Watcher {
    ClauseRef Ref;
    Lit Blocker; // satisfied blocker literal fast path
  };

  LBool value(Lit L) const {
    LBool V = Assigns[L.var()];
    return L.negated() ? ~V : V;
  }
  LBool value(Var V) const { return Assigns[V]; }

  unsigned decisionLevel() const { return (unsigned)TrailLim.size(); }

  void attachClause(ClauseRef Ref);
  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               unsigned &BacktrackLevel);
  void analyzeFinal(Lit FailedAssumption);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrack(unsigned Level);
  Lit pickBranchLit();
  void bumpVarActivity(Var V);
  void bumpClauseActivity(Clause &C);
  void decayActivities();
  void reduceLearntDB();
  void rebuildWatches();
  static uint64_t luby(uint64_t I);

  // Clause database.
  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by literal code

  // Assignment trail.
  std::vector<LBool> Assigns;        // per var
  std::vector<uint8_t> SavedPhase;   // per var, phase saving
  std::vector<unsigned> Level;       // per var
  std::vector<ClauseRef> Reason;     // per var
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLim;
  uint32_t PropagateHead = 0;

  // Branching.
  std::vector<double> Activity;
  double VarActivityInc = 1.0;
  double ClauseActivityInc = 1.0;
  VarOrderHeap Order;

  // Conflict analysis scratch.
  std::vector<uint8_t> Seen;
  std::vector<Lit> AnalyzeStack;

  std::vector<uint8_t> Model;
  std::vector<Lit> FailedAssumptions;

  SolverStats Stats;
  bool ProvenUnsat = false;
  size_t LearntCount = 0;
  size_t MaxLearnt = 4096;
  size_t BaseMaxLearnt = 4096;
};

} // namespace mba::sat

#endif // MBA_SAT_SOLVER_H
