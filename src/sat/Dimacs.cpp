//===- sat/Dimacs.cpp - DIMACS CNF reader/writer --------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"

#include <cctype>
#include <cstdlib>

using namespace mba::sat;

std::optional<CnfFormula> mba::sat::parseDimacs(std::string_view Text) {
  CnfFormula F;
  size_t Pos = 0;
  auto SkipSpace = [&] {
    while (Pos < Text.size() &&
           std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  };
  auto SkipLine = [&] {
    while (Pos < Text.size() && Text[Pos] != '\n')
      ++Pos;
  };
  std::vector<Lit> Current;
  bool SawHeader = false;
  bool InLearnt = false;
  while (true) {
    SkipSpace();
    if (Pos >= Text.size())
      break;
    char C = Text[Pos];
    if (C == 'c') {
      size_t LineStart = Pos;
      SkipLine();
      std::string_view Line = Text.substr(LineStart, Pos - LineStart);
      // Trailing \r (and any other whitespace) is insignificant.
      while (!Line.empty() && std::isspace((unsigned char)Line.back()))
        Line.remove_suffix(1);
      if (Line == "c learnt")
        InLearnt = true;
      continue;
    }
    if (C == 'p') {
      // "p cnf <vars> <clauses>"
      SkipLine(); // values are advisory; we grow on demand
      SawHeader = true;
      continue;
    }
    // Integer literal.
    bool Negative = false;
    if (C == '-') {
      Negative = true;
      ++Pos;
    }
    if (Pos >= Text.size() || !std::isdigit((unsigned char)Text[Pos]))
      return std::nullopt;
    unsigned long V = 0;
    while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos])) {
      V = V * 10 + (unsigned)(Text[Pos] - '0');
      ++Pos;
    }
    if (V == 0) {
      (InLearnt ? F.LearntClauses : F.Clauses).push_back(Current);
      Current.clear();
      continue;
    }
    Var Variable = (Var)(V - 1);
    if (Variable + 1 > F.NumVars)
      F.NumVars = Variable + 1;
    Current.push_back(Lit(Variable, Negative));
  }
  if (!Current.empty())
    return std::nullopt; // clause missing its 0 terminator
  (void)SawHeader;       // header is optional in practice
  return F;
}

std::string mba::sat::writeDimacs(const CnfFormula &F, bool IncludeLearnt) {
  std::string Out = "p cnf " + std::to_string(F.NumVars) + ' ' +
                    std::to_string(F.Clauses.size()) + '\n';
  auto AppendClause = [&Out](const std::vector<Lit> &Clause) {
    for (Lit L : Clause) {
      Out += L.negated() ? "-" : "";
      Out += std::to_string(L.var() + 1);
      Out += ' ';
    }
    Out += "0\n";
  };
  for (const auto &Clause : F.Clauses)
    AppendClause(Clause);
  if (IncludeLearnt && !F.LearntClauses.empty()) {
    Out += "c learnt\n";
    for (const auto &Clause : F.LearntClauses)
      AppendClause(Clause);
  }
  return Out;
}
