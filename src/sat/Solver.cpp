//===- sat/Solver.cpp - CDCL SAT solver -------------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "sat/Dimacs.h"
#include "support/Stopwatch.h"

#include <algorithm>

using namespace mba;
using namespace mba::sat;

SatSolver::SatSolver() : Order(Activity) {}

Var SatSolver::newVar() {
  Var V = (Var)Assigns.size();
  Assigns.push_back(LBool::Undef);
  SavedPhase.push_back(0);
  Level.push_back(0);
  Reason.push_back(InvalidClause);
  Activity.push_back(0.0);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  Order.insert(V);
  return V;
}

bool SatSolver::addClause(std::span<const Lit> Lits) {
  assert(decisionLevel() == 0 && "clauses are added at the root level");
  if (ProvenUnsat)
    return false;
  ++Stats.ClausesAdded;

  // Simplify: sort, dedupe, drop root-false literals, detect tautologies
  // and root-satisfied clauses.
  std::vector<Lit> Simplified(Lits.begin(), Lits.end());
  std::sort(Simplified.begin(), Simplified.end());
  Simplified.erase(std::unique(Simplified.begin(), Simplified.end()),
                   Simplified.end());
  std::vector<Lit> Final;
  for (size_t I = 0; I != Simplified.size(); ++I) {
    Lit L = Simplified[I];
    if (I + 1 < Simplified.size() && Simplified[I + 1] == ~L)
      return true; // tautology: x | ~x
    LBool V = value(L);
    if (V == LBool::True)
      return true; // already satisfied at root
    if (V == LBool::False)
      continue; // root-false literal drops out
    Final.push_back(L);
  }

  if (Final.empty()) {
    ProvenUnsat = true;
    return false;
  }
  if (Final.size() == 1) {
    enqueue(Final[0], InvalidClause);
    if (propagate() != InvalidClause) {
      ProvenUnsat = true;
      return false;
    }
    return true;
  }

  ClauseRef Ref = (ClauseRef)Clauses.size();
  Clauses.push_back(Clause{std::move(Final), 0.0, false, false});
  attachClause(Ref);
  return true;
}

void SatSolver::attachClause(ClauseRef Ref) {
  const Clause &C = Clauses[Ref];
  assert(C.size() >= 2 && "cannot watch a unit clause");
  Watches[C[0].code()].push_back({Ref, C[1]});
  Watches[C[1].code()].push_back({Ref, C[0]});
}

void SatSolver::enqueue(Lit L, ClauseRef From) {
  assert(value(L) == LBool::Undef && "enqueue of assigned literal");
  Var V = L.var();
  Assigns[V] = lboolFromBool(!L.negated());
  Level[V] = decisionLevel();
  Reason[V] = From;
  Trail.push_back(L);
}

ClauseRef SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++]; // P just became true
    ++Stats.Propagations;
    Lit NotP = ~P;
    std::vector<Watcher> &WList = Watches[NotP.code()];
    size_t I = 0, J = 0;
    while (I < WList.size()) {
      Watcher W = WList[I];
      // Blocker fast path: clause already satisfied.
      if (value(W.Blocker) == LBool::True) {
        WList[J++] = WList[I++];
        continue;
      }
      Clause &C = Clauses[W.Ref];
      if (C.Deleted) {
        ++I; // drop the stale watcher
        continue;
      }
      // Normalize so the falsified watched literal sits at index 1.
      if (C[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C[1] == NotP && "watcher desynchronized");
      ++I;
      if (value(C[0]) == LBool::True) {
        WList[J++] = {W.Ref, C[0]};
        continue;
      }
      // Look for a replacement watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.size(); ++K) {
        if (value(C[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C[1].code()].push_back({W.Ref, C[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Clause is unit or conflicting under the current assignment.
      WList[J++] = {W.Ref, C[0]};
      if (value(C[0]) == LBool::False) {
        // Conflict: compact the remaining watchers and bail out.
        while (I < WList.size())
          WList[J++] = WList[I++];
        WList.resize(J);
        PropagateHead = (uint32_t)Trail.size();
        return W.Ref;
      }
      enqueue(C[0], W.Ref);
    }
    WList.resize(J);
  }
  return InvalidClause;
}

namespace {
uint32_t abstractLevelBit(unsigned Level) { return 1u << (Level & 31); }
} // namespace

void SatSolver::analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
                        unsigned &BacktrackLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // slot for the asserting (first-UIP) literal

  unsigned Counter = 0;
  Lit P; // invalid on the first iteration
  size_t Index = Trail.size();
  ClauseRef CRef = Conflict;

  do {
    assert(CRef != InvalidClause && "resolving on a decision");
    Clause &C = Clauses[CRef];
    if (C.Learnt)
      bumpClauseActivity(C);
    for (size_t K = P.valid() ? 1 : 0; K < C.size(); ++K) {
      Lit Q = C[K];
      Var V = Q.var();
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVarActivity(V);
      if (Level[V] >= decisionLevel())
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Walk the trail back to the next marked literal.
    do {
      --Index;
    } while (!Seen[Trail[Index].var()]);
    P = Trail[Index];
    CRef = Reason[P.var()];
    Seen[P.var()] = 0;
    --Counter;
  } while (Counter > 0);
  Learnt[0] = ~P;

  // Conflict-clause minimization by self-subsumption (MiniSat style): a
  // literal is redundant when its reason is covered by the rest of the
  // learnt clause.
  std::vector<Lit> ToClear(Learnt.begin() + 1, Learnt.end());
  uint32_t AbstractLevels = 0;
  for (size_t I = 1; I != Learnt.size(); ++I)
    AbstractLevels |= abstractLevelBit(Level[Learnt[I].var()]);
  size_t NewSize = 1;
  for (size_t I = 1; I != Learnt.size(); ++I) {
    Lit L = Learnt[I];
    bool Redundant = false;
    if (Reason[L.var()] != InvalidClause) {
      // Track Seen marks added during the redundancy check for cleanup.
      size_t MarkBase = ToClear.size();
      AnalyzeStack.assign(1, L);
      Redundant = true;
      while (!AnalyzeStack.empty() && Redundant) {
        Lit Q = AnalyzeStack.back();
        AnalyzeStack.pop_back();
        const Clause &RC = Clauses[Reason[Q.var()]];
        for (size_t K = 1; K < RC.size(); ++K) {
          Lit R = RC[K];
          Var V = R.var();
          if (Seen[V] || Level[V] == 0)
            continue;
          if (Reason[V] != InvalidClause &&
              (abstractLevelBit(Level[V]) & AbstractLevels)) {
            Seen[V] = 1;
            ToClear.push_back(R);
            AnalyzeStack.push_back(R);
          } else {
            Redundant = false;
            break;
          }
        }
      }
      if (!Redundant) {
        for (size_t Z = MarkBase; Z < ToClear.size(); ++Z)
          Seen[ToClear[Z].var()] = 0;
        ToClear.resize(MarkBase);
      }
    }
    if (!Redundant)
      Learnt[NewSize++] = L;
  }
  Learnt.resize(NewSize);

  // Backtrack level: the second-highest decision level in the clause; move
  // that literal to index 1 so it is watched.
  if (Learnt.size() == 1) {
    BacktrackLevel = 0;
  } else {
    size_t MaxIndex = 1;
    for (size_t I = 2; I != Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxIndex].var()])
        MaxIndex = I;
    std::swap(Learnt[1], Learnt[MaxIndex]);
    BacktrackLevel = Level[Learnt[1].var()];
  }

  for (Lit L : ToClear)
    Seen[L.var()] = 0;
  Seen[Learnt[0].var()] = 0;
}

void SatSolver::backtrack(unsigned ToLevel) {
  if (decisionLevel() <= ToLevel)
    return;
  uint32_t Bound = TrailLim[ToLevel];
  for (size_t I = Trail.size(); I-- > Bound;) {
    Var V = Trail[I].var();
    SavedPhase[V] = Assigns[V] == LBool::True;
    Assigns[V] = LBool::Undef;
    Reason[V] = InvalidClause;
    Order.insert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(ToLevel);
  PropagateHead = Bound;
}

Lit SatSolver::pickBranchLit() {
  while (!Order.empty()) {
    Var V = Order.removeMax();
    if (Assigns[V] == LBool::Undef)
      return Lit(V, !SavedPhase[V]); // phase saving
  }
  return Lit(); // fully assigned: model found
}

void SatSolver::bumpVarActivity(Var V) {
  Activity[V] += VarActivityInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarActivityInc *= 1e-100;
    Order.rebuild();
  }
  Order.increased(V);
}

void SatSolver::seedActivity(std::span<const Var> Vars) {
  if (Vars.empty())
    return;
  // A plain bump is not enough: the activity increment inflates over the
  // life of the solver, so variables that conflicted late in a *previous*
  // query can hold activity many increments high. Lift the seeds to the
  // current ceiling first, then bump (which also handles rescaling), so
  // they outrank every stale variable and ties break by first conflicts.
  double Top = *std::max_element(Activity.begin(), Activity.end());
  for (Var V : Vars) {
    Activity[V] = Top;
    bumpVarActivity(V);
  }
}

void SatSolver::bumpClauseActivity(Clause &C) {
  C.Activity += ClauseActivityInc;
  if (C.Activity > 1e20) {
    for (Clause &Other : Clauses)
      if (Other.Learnt)
        Other.Activity *= 1e-20;
    ClauseActivityInc *= 1e-20;
  }
}

void SatSolver::decayActivities() {
  VarActivityInc /= 0.95;
  ClauseActivityInc /= 0.999;
}

void SatSolver::reduceLearntDB() {
  // Restart first: rebuilding watch lists blindly on lits[0]/lits[1] is
  // only invariant-preserving when nothing beyond the root level is
  // assigned (a clause whose first two literals are already false would
  // otherwise never be revisited and could silently stay violated in a
  // "model").
  backtrack(0);

  // Collect deletable learnt clauses (not currently a reason).
  std::vector<uint8_t> Locked(Clauses.size(), 0);
  for (Lit L : Trail)
    if (Reason[L.var()] != InvalidClause)
      Locked[Reason[L.var()]] = 1;

  std::vector<ClauseRef> Candidates;
  for (ClauseRef R = 0; R != Clauses.size(); ++R) {
    const Clause &C = Clauses[R];
    if (C.Learnt && !C.Deleted && !Locked[R] && C.size() > 2)
      Candidates.push_back(R);
  }
  std::sort(Candidates.begin(), Candidates.end(),
            [&](ClauseRef A, ClauseRef B) {
              return Clauses[A].Activity < Clauses[B].Activity;
            });
  size_t ToDelete = Candidates.size() / 2;
  for (size_t I = 0; I != ToDelete; ++I) {
    Clauses[Candidates[I]].Deleted = true;
    Clauses[Candidates[I]].Lits.clear();
    Clauses[Candidates[I]].Lits.shrink_to_fit();
    ++Stats.DeletedClauses;
    --LearntCount;
  }
  MaxLearnt = MaxLearnt + MaxLearnt / 4;
  rebuildWatches();
}

bool SatSolver::simplify() {
  assert(decisionLevel() == 0 && "simplify only at the root level");
  if (ProvenUnsat)
    return false;
  if (propagate() != InvalidClause) {
    ProvenUnsat = true;
    return false;
  }

  // Reason clauses of root assignments stay untouched (same locking rule
  // as reduceLearntDB); they are few and already satisfied.
  std::vector<uint8_t> Locked(Clauses.size(), 0);
  for (Lit L : Trail)
    if (Reason[L.var()] != InvalidClause)
      Locked[Reason[L.var()]] = 1;

  for (ClauseRef R = 0; R != Clauses.size(); ++R) {
    Clause &C = Clauses[R];
    if (C.Deleted || Locked[R])
      continue;
    bool Satisfied = false;
    for (Lit L : C.Lits)
      if (value(L) == LBool::True) {
        Satisfied = true;
        break;
      }
    if (Satisfied) {
      if (C.Learnt)
        --LearntCount;
      C.Deleted = true;
      C.Lits.clear();
      C.Lits.shrink_to_fit();
      ++Stats.SimplifiedClauses;
      continue;
    }
    // Root-false literals can never help again; stripping them keeps the
    // watch lists dense. At the propagation fixpoint an unsatisfied clause
    // has >= 2 unassigned literals, so the clause stays watchable.
    std::erase_if(C.Lits, [&](Lit L) { return value(L) == LBool::False; });
    assert(C.size() >= 2 && "unsatisfied clause shrank below two literals");
  }

  // Learnt-DB reductions relax MaxLearnt by 25% each time so a single hard
  // query can keep what it learns; between queries, fall back toward the
  // configured limit so the database cannot ratchet up forever.
  MaxLearnt = std::max(BaseMaxLearnt, LearntCount + BaseMaxLearnt / 4);
  rebuildWatches();
  return true;
}

void SatSolver::rebuildWatches() {
  for (auto &WList : Watches)
    WList.clear();
  for (ClauseRef R = 0; R != Clauses.size(); ++R)
    if (!Clauses[R].Deleted && Clauses[R].size() >= 2)
      attachClause(R);
}

uint64_t SatSolver::luby(uint64_t I) {
  // Finite-subsequence Luby: find the subsequence containing index I.
  uint64_t Size = 1, Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) >> 1;
    --Seq;
    I = I % Size;
  }
  return 1ULL << Seq;
}

void SatSolver::analyzeFinal(Lit FailedAssumption) {
  // FailedAssumption is an assumption literal whose negation the solver
  // derived from clauses plus earlier assumption decisions. Walk the
  // implication graph backwards from its variable; every assumption
  // *decision* reached (reason == InvalidClause at level > 0 — inside the
  // assumption prefix only assumptions are decisions) belongs to the
  // refuted subset.
  FailedAssumptions.clear();
  FailedAssumptions.push_back(FailedAssumption);
  if (decisionLevel() == 0)
    return;
  Seen[FailedAssumption.var()] = 1;
  for (size_t I = Trail.size(); I-- > TrailLim[0];) {
    Var V = Trail[I].var();
    if (!Seen[V])
      continue;
    if (Reason[V] == InvalidClause) {
      assert(Level[V] > 0 && "decision at the root level");
      // Trail[I] can share FailedAssumption's variable but never equals it
      // (FailedAssumption is false): contradictory assumptions {x, ~x}
      // report both polarities.
      FailedAssumptions.push_back(Trail[I]);
    } else {
      const Clause &C = Clauses[Reason[V]];
      for (size_t K = 1; K < C.size(); ++K)
        if (Level[C[K].var()] > 0)
          Seen[C[K].var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[FailedAssumption.var()] = 0;
}

CnfFormula SatSolver::exportCnf(bool IncludeLearnt) const {
  assert(decisionLevel() == 0 && "export only at the root level");
  CnfFormula F;
  F.NumVars = numVars();
  // Root-implied units first (addClause enqueues units instead of storing
  // them, and level-0 propagation adds more).
  for (Lit L : Trail)
    F.Clauses.push_back({L});
  for (const Clause &C : Clauses) {
    if (C.Deleted)
      continue;
    if (C.Learnt) {
      if (IncludeLearnt)
        F.LearntClauses.push_back(C.Lits);
      continue;
    }
    F.Clauses.push_back(C.Lits);
  }
  return F;
}

SatResult SatSolver::solve(const Budget &Limits) {
  return solve(std::span<const Lit>(), Limits);
}

SatResult SatSolver::solve(std::span<const Lit> Assumptions,
                           const Budget &Limits) {
  ++Stats.Solves;
  if (!Assumptions.empty())
    ++Stats.AssumptionSolves;
  Stats.ReusedLearnts += LearntCount;
  FailedAssumptions.clear();
  if (ProvenUnsat)
    return SatResult::Unsat;
  assert(decisionLevel() == 0 && "solve starts at the root level");
  Stopwatch Timer;

  if (propagate() != InvalidClause) {
    ProvenUnsat = true;
    return SatResult::Unsat;
  }

  uint64_t ConflictBudgetStart = Stats.Conflicts;
  uint64_t PropagationBudgetStart = Stats.Propagations;
  std::vector<Lit> Learnt;

  for (uint64_t RestartNum = 0;; ++RestartNum) {
    uint64_t RestartLimit = 64 * luby(RestartNum);
    uint64_t ConflictsThisRestart = 0;
    ++Stats.Restarts;

    for (;;) {
      ClauseRef Conflict = propagate();
      if (Conflict != InvalidClause) {
        ++Stats.Conflicts;
        ++ConflictsThisRestart;
        if (decisionLevel() == 0) {
          ProvenUnsat = true;
          return SatResult::Unsat;
        }

        unsigned BtLevel = 0;
        analyze(Conflict, Learnt, BtLevel);
        backtrack(BtLevel);

        if (Learnt.size() == 1) {
          enqueue(Learnt[0], InvalidClause);
        } else {
          ClauseRef Ref = (ClauseRef)Clauses.size();
          Clauses.push_back(Clause{Learnt, ClauseActivityInc, true, false});
          attachClause(Ref);
          ++Stats.LearntClauses;
          ++LearntCount;
          enqueue(Learnt[0], Ref);
        }
        decayActivities();

        // Budget checks on conflict boundaries.
        if (Stats.Conflicts - ConflictBudgetStart >= Limits.MaxConflicts ||
            Stats.Propagations - PropagationBudgetStart >=
                Limits.MaxPropagations) {
          backtrack(0);
          return SatResult::Unknown;
        }
        if ((ConflictsThisRestart & 0xff) == 0 &&
            Timer.seconds() > Limits.MaxSeconds) {
          backtrack(0);
          return SatResult::Unknown;
        }

        if (LearntCount >= MaxLearnt)
          reduceLearntDB();
        if (ConflictsThisRestart >= RestartLimit) {
          backtrack(0);
          break; // restart
        }
      } else {
        // Budgets are also enforced on decision boundaries so that
        // conflict-free instances (pure propagation chains) terminate.
        if (Stats.Conflicts - ConflictBudgetStart >= Limits.MaxConflicts ||
            Stats.Propagations - PropagationBudgetStart >=
                Limits.MaxPropagations) {
          backtrack(0);
          return SatResult::Unknown;
        }
        // Re-establish the assumption prefix: assumption i is the decision
        // of level i+1 (restarts retract it; this loop puts it back).
        Lit Next = Lit();
        while (decisionLevel() < Assumptions.size()) {
          Lit A = Assumptions[decisionLevel()];
          if (value(A) == LBool::True) {
            // Already implied: dummy level keeps the level<->index map.
            TrailLim.push_back((uint32_t)Trail.size());
          } else if (value(A) == LBool::False) {
            // Refuted under the earlier assumptions: report the subset used
            // and leave the instance usable (NOT proven unsat).
            analyzeFinal(A);
            backtrack(0);
            return SatResult::Unsat;
          } else {
            Next = A;
            break;
          }
        }
        if (!Next.valid()) {
          Next = pickBranchLit();
          if (!Next.valid()) {
            // Model found.
            Model.resize(Assigns.size());
            for (Var V = 0; V != Assigns.size(); ++V)
              Model[V] = Assigns[V] == LBool::True;
            backtrack(0);
            return SatResult::Sat;
          }
          ++Stats.Decisions;
        }
        TrailLim.push_back((uint32_t)Trail.size());
        enqueue(Next, InvalidClause);
      }
    }
  }
}
