//===- sat/Heap.h - Indexed max-heap for VSIDS ------------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An indexed binary max-heap over variables ordered by activity, in the
/// MiniSat style: supports decrease/increase-key via a position index so the
/// VSIDS branching heuristic can bump activities of variables already in
/// the heap.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SAT_HEAP_H
#define MBA_SAT_HEAP_H

#include "sat/SatTypes.h"

#include <vector>

namespace mba::sat {

/// Max-heap of variables keyed by an external activity array.
class VarOrderHeap {
public:
  explicit VarOrderHeap(const std::vector<double> &Activity)
      : Activity(Activity) {}

  bool empty() const { return Heap.empty(); }
  bool contains(Var V) const {
    return V < Positions.size() && Positions[V] != UINT32_MAX;
  }

  /// Ensures the position index covers variables up to \p V.
  void growTo(Var V) {
    if (Positions.size() <= V)
      Positions.resize(V + 1, UINT32_MAX);
  }

  void insert(Var V) {
    growTo(V);
    if (contains(V))
      return;
    Positions[V] = (uint32_t)Heap.size();
    Heap.push_back(V);
    siftUp(Positions[V]);
  }

  Var removeMax() {
    assert(!Heap.empty() && "heap underflow");
    Var Top = Heap[0];
    Positions[Top] = UINT32_MAX;
    Var Last = Heap.back();
    Heap.pop_back();
    if (!Heap.empty()) {
      Heap[0] = Last;
      Positions[Last] = 0;
      siftDown(0);
    }
    return Top;
  }

  /// Restores heap order after \p V's activity increased.
  void increased(Var V) {
    if (contains(V))
      siftUp(Positions[V]);
  }

  /// Rebuilds the heap after a global rescale (order unchanged, no-op) or
  /// wholesale activity changes.
  void rebuild() {
    for (size_t I = Heap.size(); I-- > 0;)
      siftDown((uint32_t)I);
  }

private:
  bool higher(Var A, Var B) const { return Activity[A] > Activity[B]; }

  void siftUp(uint32_t I) {
    Var V = Heap[I];
    while (I > 0) {
      uint32_t Parent = (I - 1) >> 1;
      if (!higher(V, Heap[Parent]))
        break;
      Heap[I] = Heap[Parent];
      Positions[Heap[I]] = I;
      I = Parent;
    }
    Heap[I] = V;
    Positions[V] = I;
  }

  void siftDown(uint32_t I) {
    Var V = Heap[I];
    size_t N = Heap.size();
    for (;;) {
      uint32_t Child = 2 * I + 1;
      if (Child >= N)
        break;
      if (Child + 1 < N && higher(Heap[Child + 1], Heap[Child]))
        ++Child;
      if (!higher(Heap[Child], V))
        break;
      Heap[I] = Heap[Child];
      Positions[Heap[I]] = I;
      I = Child;
    }
    Heap[I] = V;
    Positions[V] = I;
  }

  const std::vector<double> &Activity;
  std::vector<Var> Heap;
  std::vector<uint32_t> Positions; // var -> heap index or UINT32_MAX
};

} // namespace mba::sat

#endif // MBA_SAT_HEAP_H
