//===- ir/Trace.cpp - Straight-line MBA code traces ------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Trace.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <unordered_set>

using namespace mba;

namespace {

/// The token starting at offset \p At of \p Line: an identifier/number run
/// or a single punctuation character; empty at end of line.
std::string tokenAt(std::string_view Line, size_t At) {
  while (At < Line.size() && std::isspace((unsigned char)Line[At]))
    ++At;
  if (At >= Line.size())
    return "";
  size_t End = At;
  if (std::isalnum((unsigned char)Line[End]) || Line[End] == '_') {
    while (End < Line.size() &&
           (std::isalnum((unsigned char)Line[End]) || Line[End] == '_'))
      ++End;
  } else {
    ++End;
  }
  return std::string(Line.substr(At, End - At));
}

} // namespace

std::optional<Trace> Trace::parse(Context &Ctx, std::string_view Text,
                                  std::string *Error) {
  Trace T;
  size_t LineNo = 0;
  size_t Pos = 0;
  std::string_view Line; // current line with the comment stripped
  // Diagnostics carry the 1-based column and the offending token:
  //   "line 3, col 9: bad expression: ... (near '+')"
  auto FailAt = [&](size_t Col0, const std::string &Msg) {
    if (Error) {
      *Error = "line " + std::to_string(LineNo) + ", col " +
               std::to_string(Col0 + 1) + ": " + Msg;
      if (std::string Tok = tokenAt(Line, Col0); !Tok.empty())
        *Error += " (near '" + Tok + "')";
    }
    return std::nullopt;
  };

  // Destination lines (for the use-before-def diagnostic) and each
  // instruction's source position.
  std::unordered_map<const Expr *, size_t> DefLine;
  struct InstPos {
    size_t Line;
    size_t ExprCol; ///< 0-based column where the expression text starts
    std::string LineText;
  };
  std::vector<InstPos> Positions;

  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;

    // Strip comments; keep leading whitespace so columns match the source.
    size_t Hash = Line.find('#');
    if (Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    size_t First = 0;
    while (First < Line.size() && std::isspace((unsigned char)Line[First]))
      ++First;
    if (First == Line.size())
      continue;

    // name = expr  — find the '=' that is an assignment, not part of an
    // operator (the expression grammar has no '=', so the first one wins).
    size_t Eq = Line.find('=');
    if (Eq == std::string_view::npos)
      return FailAt(First, "expected 'name = expr'");
    size_t NameEnd = Eq;
    while (NameEnd > First && std::isspace((unsigned char)Line[NameEnd - 1]))
      --NameEnd;
    std::string_view Name = Line.substr(First, NameEnd - First);
    if (Name.empty())
      return FailAt(Eq, "empty destination name");
    for (size_t I = 0; I != Name.size(); ++I)
      if (!std::isalnum((unsigned char)Name[I]) && Name[I] != '_')
        return FailAt(First + I,
                      "invalid destination name '" + std::string(Name) + "'");
    if (std::isdigit((unsigned char)Name.front()))
      return FailAt(First, "destination cannot start with a digit");

    const Expr *Dest = Ctx.getVar(Name);
    if (T.Defs.count(Dest))
      return FailAt(First, "re-assignment of '" + std::string(Name) +
                               "' (traces are single-assignment)");

    ParseResult R = parseExpr(Ctx, Line.substr(Eq + 1));
    if (!R.ok())
      return FailAt(Eq + 1 + R.ErrorPos, "bad expression: " + R.Error);
    if (containsSubExpr(R.E, Dest)) {
      size_t Col = Line.find(Name, Eq + 1);
      std::string Msg = "'";
      Msg += Name;
      Msg += "' used in its own definition";
      return FailAt(Col == std::string_view::npos ? Eq + 1 : Col, Msg);
    }
    T.append(Dest, R.E);
    DefLine.emplace(Dest, LineNo);
    Positions.push_back({LineNo, Eq + 1, std::string(Line)});
  }

  // Use-before-def: a name referenced before its (later) assignment would
  // silently become a trace input of the same name — reject it instead.
  for (size_t I = 0; I != T.Insts.size(); ++I) {
    for (const Expr *V : collectVariables(T.Insts[I].Rhs)) {
      auto It = DefLine.find(V);
      if (It == DefLine.end() || It->second <= Positions[I].Line)
        continue;
      LineNo = Positions[I].Line;
      Line = Positions[I].LineText;
      size_t Col = Line.find(V->varName(), Positions[I].ExprCol);
      return FailAt(Col == std::string_view::npos ? Positions[I].ExprCol
                                                  : Col,
                    "use of '" + std::string(V->varName()) +
                        "' before its definition at line " +
                        std::to_string(It->second));
    }
  }
  return T;
}

void Trace::append(const Expr *Dest, const Expr *Rhs) {
  assert(Dest->isVar() && "destination must be a variable");
  assert(!Defs.count(Dest) && "single-assignment violated");
  Insts.push_back({Dest, Rhs});
  Defs.emplace(Dest, Rhs);
}

std::vector<const Expr *> Trace::inputs() const {
  std::vector<const Expr *> Result;
  std::unordered_set<const Expr *> Seen;
  for (const TraceInst &I : Insts) {
    for (const Expr *V : collectVariables(I.Rhs))
      if (!Defs.count(V) && Seen.insert(V).second)
        Result.push_back(V);
  }
  std::sort(Result.begin(), Result.end(), [](const Expr *A, const Expr *B) {
    return std::strcmp(A->varName(), B->varName()) < 0;
  });
  return Result;
}

std::unordered_map<const Expr *, uint64_t>
Trace::run(const Context &Ctx,
           const std::unordered_map<const Expr *, uint64_t> &InputValues)
    const {
  std::unordered_map<const Expr *, uint64_t> Env = InputValues;
  std::unordered_map<const Expr *, uint64_t> Out;
  for (const TraceInst &I : Insts) {
    uint64_t V = evaluate(Ctx, I.Rhs, Env);
    Env[I.Dest] = V;
    Out[I.Dest] = V;
  }
  return Out;
}

const Expr *Trace::flatten(Context &Ctx, const Expr *Var) const {
  // Build flattened forms in instruction order; every RHS only references
  // inputs and earlier destinations, so one forward pass suffices.
  std::unordered_map<const Expr *, const Expr *> Flat;
  for (const TraceInst &I : Insts)
    Flat[I.Dest] = substitute(Ctx, I.Rhs, Flat);
  auto It = Flat.find(Var);
  return It == Flat.end() ? Var : It->second;
}

Trace Trace::deobfuscate(Context &Ctx, MBASolver &Solver,
                         std::span<const Expr *const> Roots) const {
  Trace Result;
  for (const Expr *Root : Roots) {
    const Expr *Pure = flatten(Ctx, Root);
    Result.append(Root, Solver.simplify(Pure));
  }
  return Result;
}

Trace Trace::eliminateDeadCode(std::span<const Expr *const> Roots) const {
  // Mark backwards from the roots.
  std::unordered_set<const Expr *> Live(Roots.begin(), Roots.end());
  for (size_t I = Insts.size(); I-- > 0;) {
    if (!Live.count(Insts[I].Dest))
      continue;
    for (const Expr *V : collectVariables(Insts[I].Rhs))
      Live.insert(V);
  }
  Trace Result;
  for (const TraceInst &I : Insts)
    if (Live.count(I.Dest))
      Result.append(I.Dest, I.Rhs);
  return Result;
}

std::string Trace::print(const Context &Ctx) const {
  std::string Out;
  for (const TraceInst &I : Insts) {
    Out += I.Dest->varName();
    Out += " = ";
    Out += printExpr(Ctx, I.Rhs);
    Out += '\n';
  }
  return Out;
}
