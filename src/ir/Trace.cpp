//===- ir/Trace.cpp - Straight-line MBA code traces ------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Trace.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <unordered_set>

using namespace mba;

std::optional<Trace> Trace::parse(Context &Ctx, std::string_view Text,
                                  std::string *Error) {
  Trace T;
  size_t LineNo = 0;
  size_t Pos = 0;
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return std::nullopt;
  };
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;

    // Strip comments and whitespace.
    size_t Hash = Line.find('#');
    if (Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    while (!Line.empty() && std::isspace((unsigned char)Line.front()))
      Line.remove_prefix(1);
    while (!Line.empty() && std::isspace((unsigned char)Line.back()))
      Line.remove_suffix(1);
    if (Line.empty())
      continue;

    // name = expr  — find the '=' that is an assignment, not part of an
    // operator (the expression grammar has no '=', so the first one wins).
    size_t Eq = Line.find('=');
    if (Eq == std::string_view::npos)
      return Fail("expected 'name = expr'");
    std::string_view Name = Line.substr(0, Eq);
    while (!Name.empty() && std::isspace((unsigned char)Name.back()))
      Name.remove_suffix(1);
    if (Name.empty())
      return Fail("empty destination name");
    for (char C : Name)
      if (!std::isalnum((unsigned char)C) && C != '_')
        return Fail("invalid destination name '" + std::string(Name) + "'");
    if (std::isdigit((unsigned char)Name.front()))
      return Fail("destination cannot start with a digit");

    const Expr *Dest = Ctx.getVar(Name);
    if (T.Defs.count(Dest))
      return Fail("re-assignment of '" + std::string(Name) +
                  "' (traces are single-assignment)");

    ParseResult R = parseExpr(Ctx, Line.substr(Eq + 1));
    if (!R.ok())
      return Fail("bad expression: " + R.Error);
    if (containsSubExpr(R.E, Dest))
      return Fail("'" + std::string(Name) + "' used in its own definition");
    T.append(Dest, R.E);
  }
  return T;
}

void Trace::append(const Expr *Dest, const Expr *Rhs) {
  assert(Dest->isVar() && "destination must be a variable");
  assert(!Defs.count(Dest) && "single-assignment violated");
  Insts.push_back({Dest, Rhs});
  Defs.emplace(Dest, Rhs);
}

std::vector<const Expr *> Trace::inputs() const {
  std::vector<const Expr *> Result;
  std::unordered_set<const Expr *> Seen;
  for (const TraceInst &I : Insts) {
    for (const Expr *V : collectVariables(I.Rhs))
      if (!Defs.count(V) && Seen.insert(V).second)
        Result.push_back(V);
  }
  std::sort(Result.begin(), Result.end(), [](const Expr *A, const Expr *B) {
    return std::strcmp(A->varName(), B->varName()) < 0;
  });
  return Result;
}

std::unordered_map<const Expr *, uint64_t>
Trace::run(const Context &Ctx,
           const std::unordered_map<const Expr *, uint64_t> &InputValues)
    const {
  std::unordered_map<const Expr *, uint64_t> Env = InputValues;
  std::unordered_map<const Expr *, uint64_t> Out;
  for (const TraceInst &I : Insts) {
    uint64_t V = evaluate(Ctx, I.Rhs, Env);
    Env[I.Dest] = V;
    Out[I.Dest] = V;
  }
  return Out;
}

const Expr *Trace::flatten(Context &Ctx, const Expr *Var) const {
  // Build flattened forms in instruction order; every RHS only references
  // inputs and earlier destinations, so one forward pass suffices.
  std::unordered_map<const Expr *, const Expr *> Flat;
  for (const TraceInst &I : Insts)
    Flat[I.Dest] = substitute(Ctx, I.Rhs, Flat);
  auto It = Flat.find(Var);
  return It == Flat.end() ? Var : It->second;
}

Trace Trace::deobfuscate(Context &Ctx, MBASolver &Solver,
                         std::span<const Expr *const> Roots) const {
  Trace Result;
  for (const Expr *Root : Roots) {
    const Expr *Pure = flatten(Ctx, Root);
    Result.append(Root, Solver.simplify(Pure));
  }
  return Result;
}

Trace Trace::eliminateDeadCode(std::span<const Expr *const> Roots) const {
  // Mark backwards from the roots.
  std::unordered_set<const Expr *> Live(Roots.begin(), Roots.end());
  for (size_t I = Insts.size(); I-- > 0;) {
    if (!Live.count(Insts[I].Dest))
      continue;
    for (const Expr *V : collectVariables(Insts[I].Rhs))
      Live.insert(V);
  }
  Trace Result;
  for (const TraceInst &I : Insts)
    if (Live.count(I.Dest))
      Result.append(I.Dest, I.Rhs);
  return Result;
}

std::string Trace::print(const Context &Ctx) const {
  std::string Out;
  for (const TraceInst &I : Insts) {
    Out += I.Dest->varName();
    Out += " = ";
    Out += printExpr(Ctx, I.Rhs);
    Out += '\n';
  }
  return Out;
}
