//===- ir/Program.cpp - Multi-block SSA program IR --------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "ir/Dataflow.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

using namespace mba;

std::string Diag::str() const {
  std::string S = "line " + std::to_string(Line) + ", col " +
                  std::to_string(Col) + ": " + Message;
  if (!Token.empty())
    S += " (near '" + Token + "')";
  return S;
}

int Function::findBlock(std::string_view Name) const {
  for (unsigned I = 0; I != Blocks.size(); ++I)
    if (Blocks[I].Name == Name)
      return (int)I;
  return -1;
}

Function *Program::findFunction(std::string_view Name) {
  for (Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const Function *Program::findFunction(std::string_view Name) const {
  return const_cast<Program *>(this)->findFunction(Name);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Cursor over one source line with 1-based column tracking.
struct LineCursor {
  std::string_view Text; ///< the line, comment already stripped
  size_t Pos = 0;        ///< 0-based offset
  unsigned LineNo = 0;

  /// 1-based column of the next token (leading whitespace skipped), so
  /// diagnostics point at the token itself.
  unsigned col() {
    skipWs();
    return (unsigned)Pos + 1;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  }

  bool atEnd() {
    skipWs();
    return Pos >= Text.size();
  }

  char peek() {
    skipWs();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  /// The token starting at the cursor: an identifier/number run or one
  /// punctuation character. Empty at end of line.
  std::string peekToken() {
    skipWs();
    if (Pos >= Text.size())
      return "";
    size_t E = Pos;
    if (std::isalnum((unsigned char)Text[E]) || Text[E] == '_') {
      while (E < Text.size() &&
             (std::isalnum((unsigned char)Text[E]) || Text[E] == '_'))
        ++E;
    } else {
      ++E;
    }
    return std::string(Text.substr(Pos, E - Pos));
  }

  /// Consumes and returns an identifier, or "" if none starts here.
  std::string ident() {
    skipWs();
    if (Pos >= Text.size())
      return "";
    char C = Text[Pos];
    if (!std::isalpha((unsigned char)C) && C != '_')
      return "";
    size_t E = Pos;
    while (E < Text.size() &&
           (std::isalnum((unsigned char)Text[E]) || Text[E] == '_'))
      ++E;
    std::string S(Text.substr(Pos, E - Pos));
    Pos = E;
    return S;
  }

  std::string_view rest() {
    skipWs();
    return Text.substr(Pos);
  }
};

struct ProgramParser {
  Context &Ctx;
  Diag *D;
  Program P;

  ProgramParser(Context &Ctx, Diag *D) : Ctx(Ctx), D(D) {}

  bool fail(unsigned Line, unsigned Col, std::string Token,
            std::string Message) {
    if (D)
      *D = Diag{Line, Col, std::move(Token), std::move(Message)};
    return false;
  }

  bool fail(LineCursor &C, std::string Message) {
    return fail(C.LineNo, C.col(), C.peekToken(), std::move(Message));
  }

  /// Parses an instruction/branch/ret operand expression from the rest of
  /// the line up to \p Stop (npos = end). Reports ast parser errors with
  /// the error column mapped back into the line.
  const Expr *parseOperand(LineCursor &C, size_t Stop, std::string_view What) {
    C.skipWs();
    size_t Len = (Stop == std::string_view::npos ? C.Text.size() : Stop);
    if (Len < C.Pos)
      Len = C.Pos;
    std::string_view Slice = C.Text.substr(C.Pos, Len - C.Pos);
    if (Slice.empty()) {
      fail(C, "expected " + std::string(What));
      return nullptr;
    }
    ParseResult R = parseExpr(Ctx, Slice);
    if (!R.ok()) {
      size_t ErrPos = C.Pos + std::min(R.ErrorPos, Slice.size());
      LineCursor At = C;
      At.Pos = ErrPos;
      fail(C.LineNo, At.col(), At.peekToken(),
           "bad " + std::string(What) + ": " + R.Error);
      return nullptr;
    }
    C.Pos = Len;
    return R.E;
  }

  /// A phi incoming value: a variable or (possibly negated) constant.
  const Expr *parsePhiValue(LineCursor &C) {
    size_t Close = C.Text.find(']', C.Pos);
    const Expr *V = parseOperand(C, Close, "phi incoming value");
    if (!V)
      return nullptr;
    // The expression parser folds nothing; accept `- literal` shapes too.
    if (V->is(ExprKind::Neg) && V->operand()->isConst())
      V = Ctx.getConst(Ctx.truncate(0 - V->operand()->constValue()));
    if (!V->isVar() && !V->isConst()) {
      fail(C.LineNo, C.col(), "",
           "phi incoming values must be variables or constants");
      return nullptr;
    }
    return V;
  }

  bool parse(std::string_view Text) {
    // Split into comment-stripped lines first; every construct is
    // line-oriented.
    std::vector<std::string_view> Lines;
    size_t Pos = 0;
    while (Pos <= Text.size()) {
      size_t End = Text.find('\n', Pos);
      if (End == std::string_view::npos)
        End = Text.size();
      std::string_view L = Text.substr(Pos, End - Pos);
      size_t Hash = L.find('#');
      if (Hash != std::string_view::npos)
        L = L.substr(0, Hash);
      Lines.push_back(L);
      if (End == Text.size())
        break;
      Pos = End + 1;
    }

    Function *F = nullptr; // currently open function
    BasicBlock *BB = nullptr;
    bool BlockDone = false; // saw the terminator
    // Pending label fixups: phi/terminator labels resolved per function.
    // Targets are addressed by indices, never pointers — F->Blocks (and a
    // block's Phis) reallocate while the function is still being parsed.
    struct LabelRef {
      std::string Name;
      unsigned Line, Col;
      unsigned Block; ///< index into F->Blocks
      int Phi;        ///< phi index within the block, or -1 for terminator
      unsigned Slot;  ///< Succs index (terminator) or incoming index (phi)
    };
    std::vector<LabelRef> Refs;
    std::unordered_map<const Expr *, SourceLoc> FnDefs; // per-function

    auto closeFunction = [&](LineCursor &C) -> bool {
      if (BB && !BlockDone)
        return fail(C.LineNo, 1, "",
                    "block '" + BB->Name +
                        "' has no terminator (jmp/br/ret) before the "
                        "function ends");
      if (F->Blocks.empty())
        return fail(C.LineNo, 1, "",
                    "function '@" + F->Name + "' has no blocks");
      for (LabelRef &R : Refs) {
        int Id = F->findBlock(R.Name);
        if (Id < 0)
          return fail(R.Line, R.Col, R.Name,
                      "unknown block label '" + R.Name + "'");
        BasicBlock &RB = F->Blocks[R.Block];
        if (R.Phi >= 0)
          RB.Phis[R.Phi].Incoming[R.Slot].first = (unsigned)Id;
        else
          RB.Term.Succs[R.Slot] = (unsigned)Id;
      }
      Refs.clear();
      FnDefs.clear();
      F = nullptr;
      BB = nullptr;
      return true;
    };

    for (unsigned LineNo = 1; LineNo <= Lines.size(); ++LineNo) {
      LineCursor C{Lines[LineNo - 1], 0, LineNo};
      if (C.atEnd())
        continue;

      // 'func @name(params) {'
      if (!F) {
        unsigned KwCol = C.col();
        std::string Kw = C.ident();
        if (Kw != "func")
          return fail(LineNo, KwCol, Kw.empty() ? C.peekToken() : Kw,
                      "expected 'func' at top level");
        if (!C.consume('@'))
          return fail(C, "expected '@' before the function name");
        unsigned NameCol = C.col();
        std::string Name = C.ident();
        if (Name.empty())
          return fail(LineNo, NameCol, C.peekToken(),
                      "expected function name after '@'");
        if (!C.consume('('))
          return fail(C, "expected '(' after the function name");
        P.Functions.emplace_back();
        F = &P.Functions.back();
        F->Name = Name;
        if (!C.consume(')')) {
          while (true) {
            unsigned PCol = C.col();
            std::string PName = C.ident();
            if (PName.empty())
              return fail(LineNo, PCol, C.peekToken(),
                          "expected parameter name");
            const Expr *PV = Ctx.getVar(PName);
            if (FnDefs.count(PV))
              return fail(LineNo, PCol, PName,
                          "duplicate parameter '" + PName + "'");
            FnDefs.emplace(PV, SourceLoc{LineNo, PCol});
            F->Params.push_back(PV);
            if (C.consume(','))
              continue;
            if (C.consume(')'))
              break;
            return fail(C, "expected ',' or ')' in the parameter list");
          }
        }
        if (!C.consume('{'))
          return fail(C, "expected '{' to open the function body");
        if (!C.atEnd())
          return fail(C, "unexpected trailing text after '{'");
        BB = nullptr;
        BlockDone = false;
        continue;
      }

      // '}' closes the function.
      if (C.peek() == '}') {
        C.consume('}');
        if (!C.atEnd())
          return fail(C, "unexpected trailing text after '}'");
        if (!closeFunction(C))
          return false;
        continue;
      }

      // 'label:'  — a line consisting of one identifier and ':'.
      {
        LineCursor Save = C;
        unsigned LCol = C.col();
        std::string Label = C.ident();
        if (!Label.empty() && C.consume(':') && C.atEnd()) {
          if (BB && !BlockDone)
            return fail(LineNo, LCol, Label,
                        "block '" + BB->Name +
                            "' has no terminator (jmp/br/ret) before "
                            "label '" + Label + "'");
          if (F->findBlock(Label) >= 0)
            return fail(LineNo, LCol, Label,
                        "duplicate block label '" + Label + "'");
          F->Blocks.emplace_back();
          BB = &F->Blocks.back();
          BB->Name = Label;
          BlockDone = false;
          continue;
        }
        C = Save;
      }

      if (!BB)
        return fail(C, "expected a block label before instructions");
      if (BlockDone)
        return fail(C, "instruction after the block terminator");

      // Terminators.
      {
        LineCursor Save = C;
        unsigned KwCol = C.col();
        std::string Kw = C.ident();
        if (Kw == "jmp") {
          unsigned TCol = C.col();
          std::string Target = C.ident();
          if (Target.empty())
            return fail(LineNo, TCol, C.peekToken(),
                        "expected a target label after 'jmp'");
          if (!C.atEnd())
            return fail(C, "unexpected trailing text after the jump target");
          BB->Term = Terminator{TermKind::Jump, nullptr, {0, 0}, nullptr,
                                SourceLoc{LineNo, KwCol}};
          Refs.push_back({Target, LineNo, TCol, F->numBlocks() - 1, -1, 0});
          BlockDone = true;
          continue;
        }
        if (Kw == "br") {
          size_t Comma = C.Text.find(',', C.Pos);
          if (Comma == std::string_view::npos)
            return fail(C, "expected 'br <cond>, <label>, <label>'");
          const Expr *Cond = parseOperand(C, Comma, "branch condition");
          if (!Cond)
            return false;
          C.consume(',');
          unsigned T1Col = C.col();
          std::string T1 = C.ident();
          if (T1.empty())
            return fail(LineNo, T1Col, C.peekToken(),
                        "expected the taken label after the condition");
          if (!C.consume(','))
            return fail(C, "expected ',' between branch labels");
          unsigned T2Col = C.col();
          std::string T2 = C.ident();
          if (T2.empty())
            return fail(LineNo, T2Col, C.peekToken(),
                        "expected the fall-through label");
          if (!C.atEnd())
            return fail(C, "unexpected trailing text after the branch");
          BB->Term = Terminator{TermKind::Branch, Cond, {0, 0}, nullptr,
                                SourceLoc{LineNo, KwCol}};
          Refs.push_back({T1, LineNo, T1Col, F->numBlocks() - 1, -1, 0});
          Refs.push_back({T2, LineNo, T2Col, F->numBlocks() - 1, -1, 1});
          BlockDone = true;
          continue;
        }
        if (Kw == "ret") {
          const Expr *V = parseOperand(C, std::string_view::npos,
                                       "return value");
          if (!V)
            return false;
          BB->Term = Terminator{TermKind::Ret, nullptr, {0, 0}, V,
                                SourceLoc{LineNo, KwCol}};
          BlockDone = true;
          continue;
        }
        C = Save;
      }

      // 'name = phi ...' or 'name = expr'.
      unsigned DCol = C.col();
      std::string DName = C.ident();
      if (DName.empty())
        return fail(C, "expected 'name = expr', a terminator, or a label");
      if (!C.consume('='))
        return fail(C, "expected '=' after '" + DName + "'");
      const Expr *Dest = Ctx.getVar(DName);
      if (auto It = FnDefs.find(Dest); It != FnDefs.end())
        return fail(LineNo, DCol, DName,
                    "redefinition of '" + DName + "' (first defined at line " +
                        std::to_string(It->second.Line) +
                        "; functions are in SSA form)");
      FnDefs.emplace(Dest, SourceLoc{LineNo, DCol});

      LineCursor Save = C;
      std::string MaybePhi = C.ident();
      if (MaybePhi == "phi" && (C.peek() == '[' || C.atEnd())) {
        if (!BB->Insts.empty())
          return fail(LineNo, DCol, DName,
                      "phi nodes must precede all instructions of the block");
        PhiNode Phi;
        Phi.Dest = Dest;
        Phi.Loc = {LineNo, DCol};
        while (true) {
          if (!C.consume('['))
            return fail(C, "expected '[' to open a phi incoming");
          unsigned LCol = C.col();
          std::string Label = C.ident();
          if (Label.empty())
            return fail(LineNo, LCol, C.peekToken(),
                        "expected a predecessor label in the phi incoming");
          if (!C.consume(':'))
            return fail(C, "expected ':' after the phi predecessor label");
          const Expr *V = parsePhiValue(C);
          if (!V)
            return false;
          if (!C.consume(']'))
            return fail(C, "expected ']' to close the phi incoming");
          Phi.Incoming.emplace_back(0U, V);
          // The phi will be pushed at index BB->Phis.size() below.
          Refs.push_back({Label, LineNo, LCol, F->numBlocks() - 1,
                          (int)BB->Phis.size(),
                          (unsigned)(Phi.Incoming.size() - 1)});
          if (C.consume(','))
            continue;
          if (C.atEnd())
            break;
          return fail(C, "expected ',' or end of line after a phi incoming");
        }
        if (Phi.Incoming.empty())
          return fail(LineNo, DCol, DName, "phi needs at least one incoming");
        BB->Phis.push_back(std::move(Phi));
        continue;
      }
      C = Save;

      const Expr *Rhs = parseOperand(C, std::string_view::npos,
                                     "expression");
      if (!Rhs)
        return false;
      BB->Insts.push_back(IRInst{Dest, Rhs, SourceLoc{LineNo, DCol}});
    }

    if (F) {
      unsigned Last = (unsigned)Lines.size();
      return fail(Last, 1, "",
                  "unexpected end of input inside function '@" + F->Name +
                      "' (missing '}')");
    }
    return true;
  }
};

} // namespace

std::optional<Program> Program::parse(Context &Ctx, std::string_view Text,
                                      Diag *D) {
  MBA_TRACE_SPAN("ir.parse");
  static telemetry::Counter &Parses = telemetry::counter("ir.parse_calls");
  Parses.add();

  ProgramParser PP(Ctx, D);
  if (!PP.parse(Text))
    return std::nullopt;
  for (const Function &F : PP.P.Functions)
    if (!verifyFunction(Ctx, F, D))
      return std::nullopt;
  return std::move(PP.P);
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string mba::printFunction(const Context &Ctx, const Function &F) {
  std::string Out = "func @" + F.Name + "(";
  for (size_t I = 0; I != F.Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += F.Params[I]->varName();
  }
  Out += ") {\n";
  for (const BasicBlock &BB : F.Blocks) {
    Out += BB.Name + ":\n";
    for (const PhiNode &P : BB.Phis) {
      Out += "  ";
      Out += P.Dest->varName();
      Out += " = phi ";
      for (size_t I = 0; I != P.Incoming.size(); ++I) {
        if (I)
          Out += ", ";
        Out += "[" + F.Blocks[P.Incoming[I].first].Name + ": " +
               printExpr(Ctx, P.Incoming[I].second) + "]";
      }
      Out += '\n';
    }
    for (const IRInst &I : BB.Insts) {
      Out += "  ";
      Out += I.Dest->varName();
      Out += " = ";
      Out += printExpr(Ctx, I.Rhs);
      Out += '\n';
    }
    const Terminator &T = BB.Term;
    switch (T.Kind) {
    case TermKind::Jump:
      Out += "  jmp " + F.Blocks[T.Succs[0]].Name + "\n";
      break;
    case TermKind::Branch:
      Out += "  br " + printExpr(Ctx, T.Cond) + ", " +
             F.Blocks[T.Succs[0]].Name + ", " + F.Blocks[T.Succs[1]].Name +
             "\n";
      break;
    case TermKind::Ret:
      Out += "  ret " + printExpr(Ctx, T.Value) + "\n";
      break;
    }
  }
  Out += "}\n";
  return Out;
}

std::string Program::print(const Context &Ctx) const {
  std::string Out;
  for (size_t I = 0; I != Functions.size(); ++I) {
    if (I)
      Out += '\n';
    Out += printFunction(Ctx, Functions[I]);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

std::optional<uint64_t>
mba::interpretFunction(const Context &Ctx, const Function &F,
                       std::span<const uint64_t> Args, size_t MaxSteps) {
  std::unordered_map<const Expr *, uint64_t> Env;
  for (size_t I = 0; I != F.Params.size(); ++I)
    Env[F.Params[I]] = Ctx.truncate(I < Args.size() ? Args[I] : 0);

  unsigned Cur = 0;
  int Prev = -1;
  for (size_t Step = 0; Step != MaxSteps; ++Step) {
    const BasicBlock &BB = F.Blocks[Cur];
    if (!BB.Phis.empty()) {
      assert(Prev >= 0 && "phi in a block entered without a predecessor");
      // Parallel phi semantics: read all incomings before writing any dest.
      std::vector<uint64_t> Vals(BB.Phis.size());
      for (size_t I = 0; I != BB.Phis.size(); ++I) {
        const Expr *In = BB.Phis[I].incomingFor((unsigned)Prev);
        assert(In && "verifier guarantees an incoming per predecessor");
        Vals[I] = evaluate(Ctx, In, Env);
      }
      for (size_t I = 0; I != BB.Phis.size(); ++I)
        Env[BB.Phis[I].Dest] = Vals[I];
    }
    for (const IRInst &I : BB.Insts)
      Env[I.Dest] = evaluate(Ctx, I.Rhs, Env);

    const Terminator &T = BB.Term;
    switch (T.Kind) {
    case TermKind::Ret:
      return evaluate(Ctx, T.Value, Env);
    case TermKind::Jump:
      Prev = (int)Cur;
      Cur = T.Succs[0];
      break;
    case TermKind::Branch: {
      uint64_t C = evaluate(Ctx, T.Cond, Env);
      Prev = (int)Cur;
      Cur = C != 0 ? T.Succs[0] : T.Succs[1];
      break;
    }
    }
  }
  return std::nullopt; // fuel exhausted
}

//===----------------------------------------------------------------------===//
// Size metrics
//===----------------------------------------------------------------------===//

size_t mba::countFunctionNodes(const Function &F) {
  size_t N = 0;
  for (const BasicBlock &BB : F.Blocks) {
    for (const PhiNode &P : BB.Phis)
      N += 1 + P.Incoming.size();
    for (const IRInst &I : BB.Insts)
      N += countDagNodes(I.Rhs);
    if (BB.Term.Kind == TermKind::Branch)
      N += countDagNodes(BB.Term.Cond);
    else if (BB.Term.Kind == TermKind::Ret)
      N += countDagNodes(BB.Term.Value);
  }
  return N;
}

size_t mba::countFunctionInsts(const Function &F) {
  size_t N = 0;
  for (const BasicBlock &BB : F.Blocks)
    N += BB.Phis.size() + BB.Insts.size();
  return N;
}
