//===- ir/IRDot.h - Graphviz export of CFGs and def-use graphs --*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DOT rendering of a function's control-flow graph (blocks with their
/// instructions as record labels, branch edges annotated taken/not-taken)
/// and of its SSA def-use graph (one node per value, one edge per use).
/// Companion of ast/DotPrinter.h, surfaced through `mba_cli dot --ir`.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_IR_IRDOT_H
#define MBA_IR_IRDOT_H

#include "ast/Context.h"
#include "ir/Program.h"

#include <string>

namespace mba {

/// Renders the CFG of \p F as a DOT digraph: one box per block listing its
/// phis/instructions/terminator, edges labeled "T"/"F" for branches.
std::string cfgToDot(const Context &Ctx, const Function &F,
                     const std::string &GraphName = "cfg");

/// Renders the def-use graph of \p F: one ellipse per SSA value (boxes for
/// parameters), an edge from each value to every value whose definition
/// uses it.
std::string defUseToDot(const Context &Ctx, const Function &F,
                        const std::string &GraphName = "defuse");

} // namespace mba

#endif // MBA_IR_IRDOT_H
