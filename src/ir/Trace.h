//===- ir/Trace.h - Straight-line MBA code traces ---------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Straight-line three-address-style code over MBA operations — the
/// representation binary-analysis frontends lift obfuscated basic blocks
/// into (Syntia consumes exactly such traces; the paper's preprocessing
/// pass sits behind a lifter in a deobfuscation pipeline). A trace is a
/// sequence of single-assignment instructions
///
///   t1 = x + y
///   t2 = t1 & z
///   out = 2*t2 - (t1 | z)
///
/// where names assigned earlier may be referenced later and names never
/// assigned are the trace's *inputs*. The module provides parsing,
/// printing, evaluation, flattening a destination into a pure expression
/// over the inputs, dead-code elimination, and whole-trace deobfuscation
/// through MBASolver.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_IR_TRACE_H
#define MBA_IR_TRACE_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "mba/Simplifier.h"

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mba {

/// One assignment: Dest (a context variable) takes the value of Rhs, which
/// may reference inputs and earlier destinations.
struct TraceInst {
  const Expr *Dest = nullptr; ///< always a Var node
  const Expr *Rhs = nullptr;
};

/// A single-assignment straight-line trace.
class Trace {
public:
  /// Parses "name = expr" lines (blank lines and '#' comments allowed).
  /// Fails on re-assignment of a name or on a malformed expression;
  /// \p Error receives a diagnostic with a line number.
  static std::optional<Trace> parse(Context &Ctx, std::string_view Text,
                                    std::string *Error = nullptr);

  const std::vector<TraceInst> &instructions() const { return Insts; }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  /// Appends an instruction. \p Dest must be a variable not yet defined in
  /// this trace.
  void append(const Expr *Dest, const Expr *Rhs);

  /// True if \p Name is assigned by some instruction.
  bool defines(const Expr *Var) const { return Defs.count(Var) != 0; }

  /// The trace's inputs: variables referenced but never assigned, in
  /// name-sorted order.
  std::vector<const Expr *> inputs() const;

  /// Executes the trace under \p InputValues (indexed by variable; missing
  /// entries are 0) and returns the value of every defined name.
  std::unordered_map<const Expr *, uint64_t>
  run(const Context &Ctx,
      const std::unordered_map<const Expr *, uint64_t> &InputValues) const;

  /// The pure expression computing \p Var over the trace inputs (forward
  /// substitution of all definitions). \p Var may be an input (returned
  /// unchanged) or a defined name.
  const Expr *flatten(Context &Ctx, const Expr *Var) const;

  /// Deobfuscates the trace: flattens every root, simplifies it with
  /// \p Solver, and returns a minimal trace computing exactly the roots
  /// (one instruction per root — everything else is dead code).
  Trace deobfuscate(Context &Ctx, MBASolver &Solver,
                    std::span<const Expr *const> Roots) const;

  /// Removes instructions whose destinations cannot reach any of \p Roots.
  Trace eliminateDeadCode(std::span<const Expr *const> Roots) const;

  /// Renders the trace back to parseable text.
  std::string print(const Context &Ctx) const;

private:
  std::vector<TraceInst> Insts;
  std::unordered_map<const Expr *, const Expr *> Defs; // dest -> rhs
};

} // namespace mba

#endif // MBA_IR_TRACE_H
