//===- ir/Dataflow.h - Dataflow analyses over the program IR ----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable dataflow-analysis framework over ir/Program.h: CFG
/// construction, reverse post-order, dominator tree (Cooper-Harvey-Kennedy),
/// def-use chains, liveness, and a flow-sensitive lifting of the
/// analysis/AbstractInterp.h abstract domains across block edges with
/// widening at phi joins.
///
/// Everything here is per-function and rebuilt on demand — functions are
/// small (a lifted routine, not a translation unit), so O(blocks^2) corner
/// cases are acceptable and the implementations stay auditable against the
/// brute-force validators in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_IR_DATAFLOW_H
#define MBA_IR_DATAFLOW_H

#include "analysis/AbstractInterp.h"
#include "ast/Context.h"
#include "ast/Expr.h"
#include "ast/ExprUtils.h"
#include "ir/Program.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mba {

//===----------------------------------------------------------------------===//
// CFG + orders
//===----------------------------------------------------------------------===//

/// Successor/predecessor lists by block id. Parallel edges (a branch with
/// both targets equal) are kept — phi semantics never depend on edge
/// multiplicity here because both slots carry the same incoming value.
struct CFG {
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;

  static CFG build(const Function &F);

  unsigned numBlocks() const { return (unsigned)Succs.size(); }
};

/// Blocks reachable from the entry.
std::vector<bool> reachableBlocks(const CFG &G);

/// Reverse post-order of the reachable blocks, starting at the entry.
/// If A dominates B then A precedes B in this order, so one forward pass
/// sees every non-phi operand's definition before its uses.
std::vector<unsigned> reversePostOrder(const CFG &G);

//===----------------------------------------------------------------------===//
// Dominator tree
//===----------------------------------------------------------------------===//

/// Immediate-dominator tree of the reachable subgraph, built with the
/// Cooper-Harvey-Kennedy iterative algorithm over the reverse post-order.
class DominatorTree {
public:
  static DominatorTree build(const CFG &G);

  bool reachable(unsigned B) const { return Idom[B] >= 0; }

  /// Immediate dominator of \p B (the entry's idom is itself).
  unsigned idom(unsigned B) const {
    assert(reachable(B) && "idom of unreachable block");
    return (unsigned)Idom[B];
  }

  /// True iff \p A dominates \p B (reflexive). Unreachable blocks are
  /// dominated by nothing and dominate nothing.
  bool dominates(unsigned A, unsigned B) const;

private:
  std::vector<int> Idom;       ///< -1 for unreachable blocks
  std::vector<unsigned> Level; ///< tree depth, entry = 0
};

//===----------------------------------------------------------------------===//
// Def-use chains
//===----------------------------------------------------------------------===//

/// Where an SSA value is defined.
struct DefSite {
  enum SiteKind : uint8_t { Param, Phi, Inst } Kind = Param;
  unsigned Block = 0; ///< Phi/Inst
  unsigned Index = 0; ///< param index / phi index / inst index
};

/// One use of an SSA value.
struct UseSite {
  enum SiteKind : uint8_t { InstOp, PhiIn, TermCond, TermRet } Kind = InstOp;
  unsigned Block = 0;
  unsigned Index = 0;   ///< inst/phi index within the block
  unsigned PhiPred = 0; ///< PhiIn: the incoming predecessor block id
};

/// Definition sites and use lists of every SSA value of one function.
/// Values are Var nodes; constants never appear.
class DefUseInfo {
public:
  static DefUseInfo build(const Function &F);

  /// Def site of value \p V, or null when \p V is not defined in the
  /// function (a verifier error if it is used anyway).
  const DefSite *defOf(const Expr *V) const {
    auto It = Defs.find(V);
    return It == Defs.end() ? nullptr : &It->second;
  }

  /// All uses of \p V (empty for dead values).
  std::span<const UseSite> usesOf(const Expr *V) const {
    auto It = Uses.find(V);
    if (It == Uses.end())
      return {};
    return It->second;
  }

  size_t numUses(const Expr *V) const { return usesOf(V).size(); }

  const std::unordered_map<const Expr *, DefSite> &defs() const {
    return Defs;
  }

private:
  std::unordered_map<const Expr *, DefSite> Defs;
  std::unordered_map<const Expr *, std::vector<UseSite>> Uses;
};

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

/// Backward liveness over SSA values. A phi's incoming value is a use on
/// the corresponding predecessor edge (live-out of the predecessor, not
/// live-in of the phi's block).
struct Liveness {
  std::vector<std::unordered_set<const Expr *>> LiveIn;
  std::vector<std::unordered_set<const Expr *>> LiveOut;

  static Liveness build(const Function &F, const CFG &G);
};

//===----------------------------------------------------------------------===//
// SSA verification
//===----------------------------------------------------------------------===//

/// Structural + SSA validation of \p F: single assignment, every used
/// value defined, every use dominated by its definition (use-before-def),
/// phi incoming lists matching the CFG predecessors, terminator targets in
/// range. Unreachable blocks are checked structurally but not for
/// dominance. Returns false and fills \p D (when given) on the first
/// violation.
bool verifyFunction(const Context &Ctx, const Function &F, Diag *D = nullptr);

//===----------------------------------------------------------------------===//
// Flow-sensitive abstract interpretation
//===----------------------------------------------------------------------===//
//
// The analysis/AbstractInterp.h domains are input-independent DAG analyses:
// every Var is top. Lifting them over a function means tracking one
// abstract value per SSA value, joining at phis over incoming block edges,
// and iterating to a fixpoint when the CFG has cycles — with widening so
// the infinite-ascending-chain interval domain terminates.
//
// Domain join/widen operations live here (not in AbstractInterp.h) because
// only flow-sensitive analysis needs them.

inline KnownBits joinAbstract(const KnownBitsDomain &, const KnownBits &A,
                              const KnownBits &B) {
  return KnownBits{A.Zero & B.Zero, A.One & B.One};
}

inline bool equalAbstract(const KnownBits &A, const KnownBits &B) {
  return A.Zero == B.Zero && A.One == B.One;
}

inline bool equalAbstract(const Parity &A, const Parity &B) {
  return A.KnownLow == B.KnownLow && A.Residue == B.Residue;
}

inline bool equalAbstract(const Interval &A, const Interval &B) {
  return A.Lo == B.Lo && A.Hi == B.Hi;
}

/// Finite-height lattice: widening is the plain join.
inline KnownBits widenAbstract(const KnownBitsDomain &D, const KnownBits &A,
                               const KnownBits &B) {
  return joinAbstract(D, A, B);
}

inline Parity joinAbstract(const ParityDomain &, const Parity &A,
                           const Parity &B) {
  unsigned K = std::min(A.KnownLow, B.KnownLow);
  uint64_t Diff = (A.Residue ^ B.Residue) & lowBitsMask(K);
  if (Diff != 0) {
    unsigned Tz = 0;
    while (!(Diff & (1ULL << Tz)))
      ++Tz;
    K = Tz;
  }
  return Parity{K, A.Residue & lowBitsMask(K)};
}

inline Parity widenAbstract(const ParityDomain &D, const Parity &A,
                            const Parity &B) {
  return joinAbstract(D, A, B);
}

inline Interval joinAbstract(const IntervalDomain &, const Interval &A,
                             const Interval &B) {
  return Interval{std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

/// Intervals ascend through 2^w states; widening jumps a moving bound to
/// the extreme so loop analysis terminates in two visits per phi.
inline Interval widenAbstract(const IntervalDomain &D, const Interval &Old,
                              const Interval &New) {
  Interval Top = D.top();
  return Interval{New.Lo < Old.Lo ? Top.Lo : Old.Lo,
                  New.Hi > Old.Hi ? Top.Hi : Old.Hi};
}

/// Abstract value of expression \p E where Var nodes take their value from
/// \p Env (top when absent) instead of being unconditionally top. The
/// flow-sensitive analogue of computeAbstract().
template <class Domain>
typename Domain::Value evalAbstract(
    const Domain &D, const Expr *E,
    const std::unordered_map<const Expr *, typename Domain::Value> &Env) {
  std::unordered_map<const Expr *, typename Domain::Value> Memo;
  forEachNodePostOrder(E, [&](const Expr *N) {
    typename Domain::Value V;
    switch (N->kind()) {
    case ExprKind::Var: {
      auto It = Env.find(N);
      V = It == Env.end() ? D.top() : It->second;
      break;
    }
    case ExprKind::Const:
      V = D.constant(N->constValue());
      break;
    case ExprKind::Not:
    case ExprKind::Neg:
      V = D.unary(N->kind(), Memo.at(N->operand()));
      break;
    default:
      V = D.binary(N->kind(), Memo.at(N->lhs()), Memo.at(N->rhs()),
                   N->lhs() == N->rhs());
      break;
    }
    Memo.emplace(N, V);
  });
  return Memo.at(E);
}

/// Flow-sensitive analysis of one function in one domain. Runs a worklist
/// over reverse post-order to a fixpoint; phi joins apply widening after
/// \p WidenAfter updates of the same phi. Branch-edge refinement: on the
/// not-taken edge of `br v, T, F` where the condition is the bare value v,
/// the incoming value is met with constant 0 (the only fact `v == 0`
/// expresses in every domain).
template <class Domain> class FlowAnalysis {
public:
  using Value = typename Domain::Value;

  FlowAnalysis(const Domain &D, const Function &F, const CFG &G,
               unsigned WidenAfter = 3)
      : D(D), F(F), G(G), WidenAfter(WidenAfter) {
    run();
  }

  /// Abstract value of SSA value \p V (top for unknown / unreachable).
  Value valueOf(const Expr *V) const {
    auto It = Val.find(V);
    return It == Val.end() ? D.top() : It->second;
  }

  /// Abstract value of an arbitrary expression over the analyzed values.
  Value valueOfExpr(const Expr *E) const { return evalAbstract(D, E, Val); }

  std::optional<uint64_t> constantOf(const Expr *E) const {
    return D.asConstant(valueOfExpr(E));
  }

  const std::unordered_map<const Expr *, Value> &values() const {
    return Val;
  }

private:
  /// The incoming value of one phi edge, or nullopt while the source value
  /// is still optimistically undefined (a loop phi not yet computed —
  /// skipping it keeps loop-carried values precise instead of collapsing
  /// them to top on the first visit). Branch-edge refinement: entering
  /// block \p To from \p From on the not-taken side of `br v, ...` pins
  /// the bare value v to 0.
  std::optional<Value> incomingValue(unsigned From, unsigned To,
                                     const Expr *In, bool IsParam) const {
    Value V;
    if (In->isConst()) {
      V = D.constant(In->constValue());
    } else if (auto It = Val.find(In); It != Val.end()) {
      V = It->second;
    } else if (IsParam) {
      V = D.top();
    } else {
      return std::nullopt;
    }
    const Terminator &T = F.Blocks[From].Term;
    if (T.Kind == TermKind::Branch && T.Cond == In && In->isVar() &&
        T.Succs[1] == To && T.Succs[0] != To) {
      Value Zero = D.constant(0);
      // `v == 0` holds on this edge. Lacking a meet operator, adopt the
      // stronger constant unless it contradicts V (then the edge is dead
      // and keeping V is still sound).
      if (!D.disjoint(V, Zero))
        V = Zero;
    }
    return V;
  }

  void run() {
    std::vector<unsigned> RPO = reversePostOrder(G);
    std::vector<bool> Reach(G.numBlocks(), false);
    for (unsigned B : RPO)
      Reach[B] = true;
    std::unordered_set<const Expr *> ParamSet(F.Params.begin(),
                                              F.Params.end());

    std::unordered_map<const Expr *, unsigned> PhiUpdates;
    bool Changed = true;
    unsigned Rounds = 0;
    // Bound the rounds defensively; widening makes each phi stabilize in
    // O(WidenAfter + lattice height of the widened lattice) rounds.
    unsigned MaxRounds = 4 * (unsigned)RPO.size() + 4 * WidenAfter + 8;
    while (Changed && Rounds++ < MaxRounds) {
      Changed = false;
      for (unsigned B : RPO) {
        const BasicBlock &BB = F.Blocks[B];
        for (const PhiNode &P : BB.Phis) {
          bool Any = false;
          Value V{};
          for (const auto &[Pred, In] : P.Incoming) {
            if (!Reach[Pred])
              continue; // unreachable predecessor contributes nothing
            std::optional<Value> IV =
                incomingValue(Pred, B, In, ParamSet.count(In) != 0);
            if (!IV)
              continue;
            V = Any ? joinAbstract(D, V, *IV) : *IV;
            Any = true;
          }
          if (!Any)
            continue; // every incoming still undefined — stay optimistic
          auto It = Val.find(P.Dest);
          if (It == Val.end()) {
            Val.emplace(P.Dest, V);
            Changed = true;
          } else if (!sameValue(It->second, V)) {
            unsigned &N = PhiUpdates[P.Dest];
            ++N;
            It->second = N > WidenAfter ? widenAbstract(D, It->second, V)
                                        : joinAbstract(D, It->second, V);
            Changed = true;
          }
        }
        for (const IRInst &I : BB.Insts) {
          Value V = evalAbstract(D, I.Rhs, Val);
          auto It = Val.find(I.Dest);
          if (It == Val.end()) {
            Val.emplace(I.Dest, V);
            Changed = true;
          } else if (!sameValue(It->second, V)) {
            It->second = V;
            Changed = true;
          }
        }
      }
    }
    // The defensive round bound should never trip (widening guarantees
    // convergence), but if it does, drop to all-top rather than expose a
    // possibly-unstable assignment.
    if (Changed)
      Val.clear();
  }

  static bool sameValue(const Value &A, const Value &B) {
    return equalAbstract(A, B);
  }

  // The domain is stored by value (domains are a word or two of masks) so
  // constructing the analysis from a temporary domain is safe.
  Domain D;
  const Function &F;
  const CFG &G;
  unsigned WidenAfter;
  std::unordered_map<const Expr *, Value> Val;
};

} // namespace mba

#endif // MBA_IR_DATAFLOW_H
