//===- ir/IRDot.cpp - Graphviz export of CFGs and def-use graphs ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRDot.h"

#include "ast/Printer.h"
#include "ir/Dataflow.h"

#include <unordered_map>

using namespace mba;

namespace {

/// Escapes a string for use inside a double-quoted DOT label.
std::string dotEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\l"; // left-justified line break
      continue;
    }
    Out += C;
  }
  return Out;
}

} // namespace

std::string mba::cfgToDot(const Context &Ctx, const Function &F,
                          const std::string &GraphName) {
  std::string Out = "digraph \"" + dotEscape(GraphName) + "\" {\n";
  Out += "  node [shape=box, fontname=\"monospace\"];\n";
  Out += "  label=\"func @" + dotEscape(F.Name) + "\";\n";
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    std::string Body = BB.Name + ":\n";
    for (const PhiNode &P : BB.Phis) {
      Body += std::string(P.Dest->varName()) + " = phi ";
      for (size_t I = 0; I != P.Incoming.size(); ++I) {
        if (I)
          Body += ", ";
        Body += "[" + F.Blocks[P.Incoming[I].first].Name + ": " +
                printExpr(Ctx, P.Incoming[I].second) + "]";
      }
      Body += '\n';
    }
    for (const IRInst &I : BB.Insts)
      Body += std::string(I.Dest->varName()) + " = " +
              printExpr(Ctx, I.Rhs) + "\n";
    switch (BB.Term.Kind) {
    case TermKind::Jump:
      Body += "jmp " + F.Blocks[BB.Term.Succs[0]].Name + "\n";
      break;
    case TermKind::Branch:
      Body += "br " + printExpr(Ctx, BB.Term.Cond) + "\n";
      break;
    case TermKind::Ret:
      Body += "ret " + printExpr(Ctx, BB.Term.Value) + "\n";
      break;
    }
    Out += "  b" + std::to_string(B) + " [label=\"" + dotEscape(Body) +
           "\"];\n";
    if (BB.Term.Kind == TermKind::Jump)
      Out += "  b" + std::to_string(B) + " -> b" +
             std::to_string(BB.Term.Succs[0]) + ";\n";
    else if (BB.Term.Kind == TermKind::Branch) {
      Out += "  b" + std::to_string(B) + " -> b" +
             std::to_string(BB.Term.Succs[0]) + " [label=\"T\"];\n";
      Out += "  b" + std::to_string(B) + " -> b" +
             std::to_string(BB.Term.Succs[1]) + " [label=\"F\"];\n";
    }
  }
  Out += "}\n";
  return Out;
}

std::string mba::defUseToDot(const Context &Ctx, const Function &F,
                             const std::string &GraphName) {
  (void)Ctx;
  DefUseInfo DU = DefUseInfo::build(F);

  // Stable node ids in definition order: params, then block order.
  std::unordered_map<const Expr *, unsigned> Id;
  std::vector<const Expr *> Values;
  auto Add = [&](const Expr *V) {
    if (Id.emplace(V, (unsigned)Values.size()).second)
      Values.push_back(V);
  };
  for (const Expr *P : F.Params)
    Add(P);
  for (const BasicBlock &BB : F.Blocks) {
    for (const PhiNode &P : BB.Phis)
      Add(P.Dest);
    for (const IRInst &I : BB.Insts)
      Add(I.Dest);
  }

  std::string Out = "digraph \"" + dotEscape(GraphName) + "\" {\n";
  Out += "  rankdir=LR;\n";
  Out += "  label=\"def-use of @" + dotEscape(F.Name) + "\";\n";
  for (const Expr *V : Values) {
    const DefSite *D = DU.defOf(V);
    const char *Shape = !D || D->Kind == DefSite::Param ? "box"
                        : D->Kind == DefSite::Phi       ? "hexagon"
                                                        : "ellipse";
    Out += "  v" + std::to_string(Id.at(V)) + " [shape=" + Shape +
           ", label=\"" + dotEscape(V->varName()) + "\"];\n";
  }
  // One edge per (value, using definition/terminator). The user node of a
  // use site is the value it defines; terminator uses get per-block sink
  // nodes.
  for (const Expr *V : Values) {
    for (const UseSite &U : DU.usesOf(V)) {
      std::string To;
      switch (U.Kind) {
      case UseSite::InstOp:
        // Appends (not `"v" + to_string(...)`) dodge a GCC 12 -Wrestrict
        // false positive on the temporary-string prepend path.
        To = "v";
        To += std::to_string(Id.at(F.Blocks[U.Block].Insts[U.Index].Dest));
        break;
      case UseSite::PhiIn:
        To = "v";
        To += std::to_string(Id.at(F.Blocks[U.Block].Phis[U.Index].Dest));
        break;
      case UseSite::TermCond:
      case UseSite::TermRet: {
        std::string Sink = "t";
        Sink += std::to_string(U.Block);
        static const char *Label[] = {"", "", "br", "ret"};
        Out += "  " + Sink + " [shape=diamond, label=\"" +
               F.Blocks[U.Block].Name + ": " + Label[U.Kind] + "\"];\n";
        To = Sink;
        break;
      }
      }
      Out += "  v" + std::to_string(Id.at(V)) + " -> " + To + ";\n";
    }
  }
  Out += "}\n";
  return Out;
}
