//===- ir/Dataflow.cpp - Dataflow analyses over the program IR ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Dataflow.h"

#include "support/Telemetry.h"

#include <algorithm>

using namespace mba;

//===----------------------------------------------------------------------===//
// CFG + orders
//===----------------------------------------------------------------------===//

CFG CFG::build(const Function &F) {
  CFG G;
  G.Succs.resize(F.numBlocks());
  G.Preds.resize(F.numBlocks());
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    const Terminator &T = F.Blocks[B].Term;
    for (unsigned I = 0; I != T.numSuccessors(); ++I) {
      unsigned S = T.Succs[I];
      G.Succs[B].push_back(S);
      G.Preds[S].push_back(B);
    }
  }
  return G;
}

std::vector<bool> mba::reachableBlocks(const CFG &G) {
  std::vector<bool> Seen(G.numBlocks(), false);
  if (G.numBlocks() == 0)
    return Seen;
  std::vector<unsigned> Stack{0};
  Seen[0] = true;
  while (!Stack.empty()) {
    unsigned B = Stack.back();
    Stack.pop_back();
    for (unsigned S : G.Succs[B])
      if (!Seen[S]) {
        Seen[S] = true;
        Stack.push_back(S);
      }
  }
  return Seen;
}

std::vector<unsigned> mba::reversePostOrder(const CFG &G) {
  std::vector<unsigned> Post;
  if (G.numBlocks() == 0)
    return Post;
  // Iterative DFS with an explicit successor cursor per frame.
  std::vector<uint8_t> State(G.numBlocks(), 0); // 0 new, 1 open, 2 done
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.emplace_back(0U, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, Cursor] = Stack.back();
    if (Cursor < G.Succs[B].size()) {
      unsigned S = G.Succs[B][Cursor++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
    } else {
      State[B] = 2;
      Post.push_back(B);
      Stack.pop_back();
    }
  }
  std::reverse(Post.begin(), Post.end());
  return Post;
}

//===----------------------------------------------------------------------===//
// Dominator tree (Cooper-Harvey-Kennedy)
//===----------------------------------------------------------------------===//

DominatorTree DominatorTree::build(const CFG &G) {
  DominatorTree DT;
  unsigned N = G.numBlocks();
  DT.Idom.assign(N, -1);
  DT.Level.assign(N, 0);
  if (N == 0)
    return DT;

  std::vector<unsigned> RPO = reversePostOrder(G);
  std::vector<int> RpoNum(N, -1);
  for (unsigned I = 0; I != RPO.size(); ++I)
    RpoNum[RPO[I]] = (int)I;

  DT.Idom[0] = 0;
  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RpoNum[A] > RpoNum[B])
        A = (unsigned)DT.Idom[A];
      while (RpoNum[B] > RpoNum[A])
        B = (unsigned)DT.Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : RPO) {
      if (B == 0)
        continue;
      int NewIdom = -1;
      for (unsigned P : G.Preds[B]) {
        if (DT.Idom[P] < 0)
          continue; // not yet processed / unreachable
        NewIdom = NewIdom < 0 ? (int)P
                              : (int)Intersect((unsigned)NewIdom, P);
      }
      if (NewIdom >= 0 && DT.Idom[B] != NewIdom) {
        DT.Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }

  for (unsigned B : RPO)
    if (B != 0)
      DT.Level[B] = DT.Level[(unsigned)DT.Idom[B]] + 1;
  return DT;
}

bool DominatorTree::dominates(unsigned A, unsigned B) const {
  if (A >= Idom.size() || B >= Idom.size() || !reachable(A) || !reachable(B))
    return false;
  while (Level[B] > Level[A])
    B = (unsigned)Idom[B];
  return A == B;
}

//===----------------------------------------------------------------------===//
// Def-use chains
//===----------------------------------------------------------------------===//

DefUseInfo DefUseInfo::build(const Function &F) {
  DefUseInfo DU;
  for (unsigned I = 0; I != F.Params.size(); ++I)
    DU.Defs.emplace(F.Params[I], DefSite{DefSite::Param, 0, I});
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    for (unsigned I = 0; I != BB.Phis.size(); ++I)
      DU.Defs.emplace(BB.Phis[I].Dest, DefSite{DefSite::Phi, B, I});
    for (unsigned I = 0; I != BB.Insts.size(); ++I)
      DU.Defs.emplace(BB.Insts[I].Dest, DefSite{DefSite::Inst, B, I});
  }

  auto AddExprUses = [&](const Expr *E, UseSite Site) {
    for (const Expr *V : collectVariables(E))
      DU.Uses[V].push_back(Site);
  };
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    for (unsigned I = 0; I != BB.Phis.size(); ++I)
      for (const auto &[Pred, In] : BB.Phis[I].Incoming)
        if (In->isVar())
          DU.Uses[In].push_back(UseSite{UseSite::PhiIn, B, I, Pred});
    for (unsigned I = 0; I != BB.Insts.size(); ++I)
      AddExprUses(BB.Insts[I].Rhs, UseSite{UseSite::InstOp, B, I, 0});
    const Terminator &T = BB.Term;
    if (T.Kind == TermKind::Branch)
      AddExprUses(T.Cond, UseSite{UseSite::TermCond, B, 0, 0});
    else if (T.Kind == TermKind::Ret)
      AddExprUses(T.Value, UseSite{UseSite::TermRet, B, 0, 0});
  }
  return DU;
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

Liveness Liveness::build(const Function &F, const CFG &G) {
  unsigned N = F.numBlocks();
  Liveness L;
  L.LiveIn.resize(N);
  L.LiveOut.resize(N);

  // Per-block defs and upward-exposed uses. Phi incomings are edge uses
  // (handled when computing the predecessor's live-out); phi dests are
  // block-entry defs.
  std::vector<std::unordered_set<const Expr *>> Def(N), UpUse(N);
  for (unsigned B = 0; B != N; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    auto Use = [&](const Expr *E) {
      for (const Expr *V : collectVariables(E))
        if (!Def[B].count(V))
          UpUse[B].insert(V);
    };
    for (const PhiNode &P : BB.Phis)
      Def[B].insert(P.Dest);
    for (const IRInst &I : BB.Insts) {
      Use(I.Rhs);
      Def[B].insert(I.Dest);
    }
    if (BB.Term.Kind == TermKind::Branch)
      Use(BB.Term.Cond);
    else if (BB.Term.Kind == TermKind::Ret)
      Use(BB.Term.Value);
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = N; I-- > 0;) {
      unsigned B = I; // plain reverse index order; fixpoint fixes the rest
      std::unordered_set<const Expr *> Out;
      for (unsigned S : G.Succs[B]) {
        for (const Expr *V : L.LiveIn[S])
          Out.insert(V);
        for (const PhiNode &P : F.Blocks[S].Phis)
          if (const Expr *In = P.incomingFor(B); In && In->isVar())
            Out.insert(In);
      }
      std::unordered_set<const Expr *> In = UpUse[B];
      for (const Expr *V : Out)
        if (!Def[B].count(V))
          In.insert(V);
      if (Out != L.LiveOut[B] || In != L.LiveIn[B]) {
        L.LiveOut[B] = std::move(Out);
        L.LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
  return L;
}

//===----------------------------------------------------------------------===//
// SSA verification
//===----------------------------------------------------------------------===//

namespace {

bool verifyFail(Diag *D, SourceLoc Loc, std::string Token,
                std::string Message) {
  if (D)
    *D = Diag{Loc.Line, Loc.Col, std::move(Token), std::move(Message)};
  return false;
}

} // namespace

bool mba::verifyFunction(const Context &Ctx, const Function &F, Diag *D) {
  (void)Ctx;
  if (F.Blocks.empty())
    return verifyFail(D, {}, "", "function '@" + F.Name + "' has no blocks");

  unsigned N = F.numBlocks();
  // Structural checks first: successor ids in range, dest/param shapes.
  std::unordered_map<const Expr *, SourceLoc> DefLoc;
  auto Define = [&](const Expr *V, SourceLoc Loc, std::string_view What,
                    std::string *Err) {
    if (!V || !V->isVar()) {
      *Err = std::string(What) + " destination is not a variable";
      return false;
    }
    auto [It, New] = DefLoc.emplace(V, Loc);
    if (!New) {
      *Err = "redefinition of '" + std::string(V->varName()) +
             "' (first defined at line " + std::to_string(It->second.Line) +
             "; functions are in SSA form)";
      return false;
    }
    return true;
  };

  std::string Err;
  for (const Expr *P : F.Params)
    if (!Define(P, SourceLoc{}, "parameter", &Err))
      return verifyFail(D, {}, P && P->isVar() ? P->varName() : "", Err);

  for (unsigned B = 0; B != N; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    const Terminator &T = BB.Term;
    for (unsigned I = 0; I != T.numSuccessors(); ++I)
      if (T.Succs[I] >= N)
        return verifyFail(D, T.Loc, "",
                          "terminator of block '" + BB.Name +
                              "' targets block id " +
                              std::to_string(T.Succs[I]) + " of " +
                              std::to_string(N));
    if (T.Kind == TermKind::Branch && !T.Cond)
      return verifyFail(D, T.Loc, "", "branch without a condition");
    if (T.Kind == TermKind::Ret && !T.Value)
      return verifyFail(D, T.Loc, "", "ret without a value");
    for (const PhiNode &P : BB.Phis)
      if (!Define(P.Dest, P.Loc, "phi", &Err))
        return verifyFail(D, P.Loc,
                          P.Dest && P.Dest->isVar() ? P.Dest->varName() : "",
                          Err);
    for (const IRInst &I : BB.Insts)
      if (!Define(I.Dest, I.Loc, "instruction", &Err))
        return verifyFail(D, I.Loc,
                          I.Dest && I.Dest->isVar() ? I.Dest->varName() : "",
                          Err);
  }

  CFG G = CFG::build(F);

  // Entry phis can never be evaluated for the initial entry from outside.
  if (!F.Blocks[0].Phis.empty())
    return verifyFail(D, F.Blocks[0].Phis[0].Loc,
                      F.Blocks[0].Phis[0].Dest->varName(),
                      "the entry block cannot have phi nodes");

  // Phi incoming lists must name each CFG predecessor exactly once; phi
  // incoming values must be variables or constants.
  for (unsigned B = 0; B != N; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    std::unordered_set<unsigned> PredSet(G.Preds[B].begin(),
                                         G.Preds[B].end());
    for (const PhiNode &P : BB.Phis) {
      std::unordered_set<unsigned> Seen;
      for (const auto &[Pred, In] : P.Incoming) {
        if (!In || (!In->isVar() && !In->isConst()))
          return verifyFail(D, P.Loc, P.Dest->varName(),
                            "phi incoming values must be variables or "
                            "constants");
        if (Pred >= N || !PredSet.count(Pred))
          return verifyFail(
              D, P.Loc, Pred < N ? F.Blocks[Pred].Name : "",
              "phi of '" + std::string(P.Dest->varName()) +
                  "' has an incoming from '" +
                  (Pred < N ? F.Blocks[Pred].Name : "<out of range>") +
                  "', which is not a predecessor of '" + BB.Name + "'");
        if (!Seen.insert(Pred).second)
          return verifyFail(D, P.Loc, F.Blocks[Pred].Name,
                            "phi of '" + std::string(P.Dest->varName()) +
                                "' lists predecessor '" +
                                F.Blocks[Pred].Name + "' twice");
      }
      for (unsigned Pred : PredSet)
        if (!Seen.count(Pred))
          return verifyFail(D, P.Loc, F.Blocks[Pred].Name,
                            "phi of '" + std::string(P.Dest->varName()) +
                                "' is missing an incoming for predecessor '" +
                                F.Blocks[Pred].Name + "'");
    }
  }

  // Dominance: every use in a reachable block must be dominated by its
  // definition. Instruction order within a block gives the intra-block
  // relation; a phi incoming is a use at the end of the predecessor.
  DominatorTree DT = DominatorTree::build(G);
  std::vector<bool> Reach = reachableBlocks(G);

  // Position of each def inside its block: phis count as position -1
  // (before every instruction), instruction i as position i.
  struct Pos {
    unsigned Block;
    int Index; ///< -2 param (dominates everything), -1 phi, >=0 inst
  };
  std::unordered_map<const Expr *, Pos> DefPos;
  for (const Expr *P : F.Params)
    DefPos.emplace(P, Pos{0, -2});
  for (unsigned B = 0; B != N; ++B) {
    for (const PhiNode &P : F.Blocks[B].Phis)
      DefPos.emplace(P.Dest, Pos{B, -1});
    for (unsigned I = 0; I != F.Blocks[B].Insts.size(); ++I)
      DefPos.emplace(F.Blocks[B].Insts[I].Dest, Pos{B, (int)I});
  }

  auto CheckUse = [&](const Expr *V, unsigned UseBlock, int UsePos,
                      std::string *Msg) {
    auto It = DefPos.find(V);
    if (It == DefPos.end()) {
      *Msg = "use of undefined value '" + std::string(V->varName()) + "'";
      return false;
    }
    if (!Reach[UseBlock])
      return true; // unreachable code: structural checks only
    const Pos &P = It->second;
    bool Ok;
    if (P.Index == -2)
      Ok = true; // parameters dominate every use
    else if (P.Block == UseBlock)
      Ok = P.Index < UsePos;
    else
      Ok = DT.dominates(P.Block, UseBlock);
    if (!Ok) {
      *Msg = "use of '" + std::string(V->varName()) +
             "' is not dominated by its definition (use before def)";
      return false;
    }
    return true;
  };

  std::string Msg;
  for (unsigned B = 0; B != N; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    for (const PhiNode &P : BB.Phis)
      for (const auto &[Pred, In] : P.Incoming) {
        if (!In->isVar())
          continue;
        // The incoming value is read at the end of Pred.
        if (!CheckUse(In, Pred, (int)F.Blocks[Pred].Insts.size(), &Msg))
          return verifyFail(D, P.Loc, In->varName(), Msg);
      }
    for (unsigned I = 0; I != BB.Insts.size(); ++I)
      for (const Expr *V : collectVariables(BB.Insts[I].Rhs))
        if (!CheckUse(V, B, (int)I, &Msg))
          return verifyFail(D, BB.Insts[I].Loc, V->varName(), Msg);
    const Expr *TermE = BB.Term.Kind == TermKind::Branch ? BB.Term.Cond
                        : BB.Term.Kind == TermKind::Ret ? BB.Term.Value
                                                        : nullptr;
    if (TermE)
      for (const Expr *V : collectVariables(TermE))
        if (!CheckUse(V, B, (int)BB.Insts.size(), &Msg))
          return verifyFail(D, BB.Term.Loc, V->varName(), Msg);
  }
  return true;
}
