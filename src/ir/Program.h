//===- ir/Program.h - Multi-block SSA program IR ----------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small SSA program IR: functions made of basic blocks with phi nodes,
/// straight-line MBA instructions, and branches on MBA-expressible
/// conditions. This is the representation a lifter hands to the MBA
/// deobfuscation pipeline (ir/Passes.h) — the straight-line ir/Trace is the
/// degenerate single-block case.
///
/// Textual grammar (one construct per line, '#' comments, flexible
/// whitespace):
///
///   program  := function*
///   function := 'func' '@' IDENT '(' [IDENT (',' IDENT)*] ')' '{'
///               block+ '}'
///   block    := IDENT ':' phi* inst* term
///   phi      := IDENT '=' 'phi' '[' IDENT ':' value ']'
///                            (',' '[' IDENT ':' value ']')*
///   inst     := IDENT '=' expr            # expr from ast/Parser.h
///   term     := 'jmp' IDENT
///             | 'br' expr ',' IDENT ',' IDENT   # taken iff expr != 0
///             | 'ret' expr
///   value    := IDENT | NUMBER | '-' NUMBER
///
/// SSA discipline: every name is defined at most once per function; every
/// use must be dominated by its definition; a block's phi incoming labels
/// must be exactly its CFG predecessors. Violations are parse/verify
/// errors with line/column diagnostics (see Diag).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_IR_PROGRAM_H
#define MBA_IR_PROGRAM_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mba {

/// 1-based position of a construct (or error) in the IR source text.
/// Programs built programmatically carry the default {0, 0}.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;
};

/// One parse/verify diagnostic: position, the offending token, and a
/// human-readable message.
struct Diag {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Token;   ///< offending token (may be empty)
  std::string Message; ///< human-readable description

  /// "line L, col C: message (near 'token')".
  std::string str() const;
};

/// One phi node: Dest takes the incoming value matching the predecessor
/// the block was entered from. Incoming values are variables or constants.
/// All phis of a block are evaluated in parallel before its instructions.
struct PhiNode {
  const Expr *Dest = nullptr; ///< always a Var node
  /// (predecessor block id, incoming value) pairs.
  std::vector<std::pair<unsigned, const Expr *>> Incoming;
  SourceLoc Loc;

  /// The value flowing in from block \p Pred, or null if absent.
  const Expr *incomingFor(unsigned Pred) const {
    for (const auto &[B, V] : Incoming)
      if (B == Pred)
        return V;
    return nullptr;
  }
};

/// One assignment: Dest (a Var node) takes the value of Rhs.
struct IRInst {
  const Expr *Dest = nullptr; ///< always a Var node
  const Expr *Rhs = nullptr;
  SourceLoc Loc;
};

/// Block terminator kinds.
enum class TermKind : uint8_t {
  Jump,   ///< unconditional jump to Succs[0]
  Branch, ///< to Succs[0] iff Cond != 0, else Succs[1]
  Ret     ///< return Value from the function
};

/// A block's terminator. Successors are block ids within the function.
struct Terminator {
  TermKind Kind = TermKind::Ret;
  const Expr *Cond = nullptr;  ///< Branch only
  unsigned Succs[2] = {0, 0};  ///< Jump: [0]; Branch: [0]=taken, [1]=not
  const Expr *Value = nullptr; ///< Ret only
  SourceLoc Loc;

  unsigned numSuccessors() const {
    return Kind == TermKind::Ret ? 0 : (Kind == TermKind::Jump ? 1 : 2);
  }
};

/// One basic block: phis, then straight-line instructions, then the
/// terminator. Identified inside its function by index (id) and by name.
struct BasicBlock {
  std::string Name;
  std::vector<PhiNode> Phis;
  std::vector<IRInst> Insts;
  Terminator Term;
};

/// One function: named parameters (the SSA inputs) and basic blocks;
/// Blocks[0] is the entry.
struct Function {
  std::string Name;
  std::vector<const Expr *> Params; ///< Var nodes
  std::vector<BasicBlock> Blocks;

  BasicBlock &entry() { return Blocks.front(); }
  const BasicBlock &entry() const { return Blocks.front(); }
  unsigned numBlocks() const { return (unsigned)Blocks.size(); }

  /// Block id of \p Name, or -1.
  int findBlock(std::string_view Name) const;
};

/// A parsed (or constructed) program: an ordered list of functions.
struct Program {
  std::vector<Function> Functions;

  /// Parses the textual IR into \p Ctx, running full SSA verification
  /// (verifyFunction) on every function. On failure returns nullopt and
  /// fills \p D when given.
  static std::optional<Program> parse(Context &Ctx, std::string_view Text,
                                      Diag *D = nullptr);

  /// Renders the program back to parseable text (the canonical form:
  /// parse(print(P)) reproduces print(P) exactly).
  std::string print(const Context &Ctx) const;

  Function *findFunction(std::string_view Name);
  const Function *findFunction(std::string_view Name) const;
};

/// Renders one function in the textual grammar.
std::string printFunction(const Context &Ctx, const Function &F);

/// Executes \p F on \p Args (indexed like F.Params; missing values are 0).
/// Returns the 'ret' value, or nullopt when \p MaxSteps block transfers
/// did not reach a 'ret' (runaway loop guard).
std::optional<uint64_t> interpretFunction(const Context &Ctx,
                                          const Function &F,
                                          std::span<const uint64_t> Args,
                                          size_t MaxSteps = 1 << 16);

/// Total expression-node volume of a function: DAG nodes of every
/// instruction rhs, branch condition and return value, plus one per phi
/// incoming. The node-count metric of the deobfuscation report.
size_t countFunctionNodes(const Function &F);

/// Number of phis + instructions across all blocks.
size_t countFunctionInsts(const Function &F);

} // namespace mba

#endif // MBA_IR_PROGRAM_H
