//===- ir/Passes.h - MBA deobfuscation passes over the program IR -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static deobfuscation pipeline over ir/Program.h — the pass-pipeline
/// idiom the paper assumes sits behind a lifter:
///
///  1. **Opaque-predicate elimination** (foldOpaqueBranches): flatten every
///     branch condition to a pure expression, decide it with the abstract
///     domains / the stage-0 prover / the flow-sensitive analysis, verify
///     the decision with the staged equivalence checker, and fold the
///     branch to an unconditional jump.
///  2. **Unreachable-block removal** after folding.
///  3. **Trivial-phi simplification** (single predecessor or all-equal
///     incomings) by use substitution.
///  4. **MBA-region detection & rewrite**: slice maximal single-exit
///     regions out of the def-use graph (an instruction whose value
///     escapes to a phi/terminator, plus everything it transitively
///     computes from), flatten each region to a pure expression over its
///     inputs, score it with mba/Metrics, simplify with MBASolver, verify
///     the rewrite with the staged equivalence checker, and replace the
///     root instruction in place.
///  5. **Dead-instruction elimination** sweeps the consumed interior.
///
/// The pipeline iterates (folding a branch can expose new regions and vice
/// versa) up to PassOptions::MaxIterations. Every rewrite that changes
/// semantics-relevant structure is re-verified; a NotEquivalent verdict
/// blocks the rewrite and is counted as an unsound candidate — the pass
/// never applies one.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_IR_PASSES_H
#define MBA_IR_PASSES_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "ir/Program.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace mba {

/// Tuning knobs of the deobfuscation pipeline.
struct PassOptions {
  /// Options of the MBASolver used on flattened regions.
  SimplifyOptions Simplify;

  /// Re-verify every region rewrite and branch fold with the equivalence
  /// checker. Disabling trusts the (already sound) simplifier/prover and
  /// skips the cross-check.
  bool Verify = true;

  /// Per-query timeout of verification checks, seconds.
  double VerifyTimeout = 5.0;

  /// Regions whose flattened expression exceeds this many DAG nodes are
  /// skipped (reported, not rewritten).
  size_t MaxRegionNodes = 4096;

  /// Minimum MBA alternation of a flattened region to count as an MBA
  /// region worth simplifying.
  uint64_t MinAlternation = 1;

  /// Maximum pipeline iterations per function.
  unsigned MaxIterations = 4;
};

/// One detected region, rooted at the instruction whose value escapes.
struct RegionInfo {
  std::string Root;              ///< root destination name
  std::string Block;             ///< block of the root instruction
  size_t NumInsts = 0;           ///< instructions folded into the region
  size_t NodesBefore = 0;        ///< DAG nodes of the flattened expression
  size_t NodesAfter = 0;         ///< DAG nodes after simplification
  uint64_t AlternationBefore = 0;
  uint64_t AlternationAfter = 0;
  bool Rewritten = false;        ///< simplified form installed
  bool Verified = false;         ///< checker confirmed Equivalent
  bool VerifyTimedOut = false;   ///< checker could not decide in budget
};

/// Per-function pipeline outcome.
struct FunctionReport {
  std::string Name;
  size_t BlocksBefore = 0;
  size_t BlocksAfter = 0;
  size_t InstsBefore = 0; ///< phis + instructions
  size_t InstsAfter = 0;
  size_t NodesBefore = 0; ///< countFunctionNodes
  size_t NodesAfter = 0;
  size_t RegionsFound = 0;
  size_t RegionsRewritten = 0;
  size_t BranchesFolded = 0;
  size_t BlocksRemoved = 0;
  size_t PhisSimplified = 0;
  size_t InstsRemoved = 0;
  /// Rewrite candidates the checker proved NotEquivalent — blocked, never
  /// applied. Nonzero only when a custom ExperimentalRule is unsound.
  size_t UnsoundBlocked = 0;
  std::vector<RegionInfo> Regions;

  /// Multi-line human-readable report.
  std::string str() const;
};

/// Whole-program outcome: per-function reports plus totals.
struct ProgramReport {
  std::vector<FunctionReport> Functions;

  size_t totalRegionsFound() const;
  size_t totalRegionsRewritten() const;
  size_t totalBranchesFolded() const;
  size_t totalUnsoundBlocked() const;

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Individual passes (exposed for tests; deobfuscateFunction composes them)
//===----------------------------------------------------------------------===//

/// Fingerprints of flattened expressions whose verification already timed
/// out (or was refuted): the pipeline iterates, and re-posing an
/// undecidable query every round costs a full timeout each time. Owned by
/// deobfuscateFunction, threaded through the passes.
using FailedVerifySet = std::unordered_set<uint64_t>;

/// The equivalence checker the pipeline verifies rewrites with: the
/// signature-theory decision procedure (sound, complete on the linear
/// fragment, microseconds) in front of the staged stage-0 prover +
/// bit-blasting backend. Never guesses: an undecided query keeps the
/// original code.
std::unique_ptr<EquivalenceChecker> makeRegionVerifier(Context &Ctx);

/// The pure expression computing SSA value \p V in \p F: forward
/// substitution through instruction definitions, stopping at parameters and
/// phi destinations (which remain free variables). \p V may also be a
/// constant or an expression; every variable of it is flattened.
const Expr *flattenValue(Context &Ctx, const Function &F, const Expr *V);

/// Folds branches whose condition is proved constant. Decision procedures,
/// in order: multi-domain constant folding of the flattened condition, the
/// stage-0 prover (prove == 0 / refute == 0 on every input), and the
/// flow-sensitive abstract analysis with a bounded one-level phi case
/// split. When \p Checker is non-null every fold is re-verified (the
/// taken-direction encoding uses (c | -c) & signbit == signbit, "c is
/// nonzero everywhere"); an undecided verification blocks the fold.
/// Returns the number of branches folded.
unsigned foldOpaqueBranches(Context &Ctx, Function &F,
                            EquivalenceChecker *Checker,
                            const PassOptions &Opts,
                            FunctionReport *Report = nullptr,
                            FailedVerifySet *FailedVerify = nullptr);

/// Deletes blocks unreachable from the entry, remapping successor ids and
/// dropping phi incomings from deleted predecessors. Returns the number of
/// blocks removed.
unsigned removeUnreachableBlocks(Function &F,
                                 FunctionReport *Report = nullptr);

/// Replaces phis with a single incoming — or all incomings equal — by their
/// value, substituting through every use. Iterates until no trivial phi
/// remains. Returns the number of phis removed.
unsigned simplifyTrivialPhis(Context &Ctx, Function &F,
                             FunctionReport *Report = nullptr);

/// Mark-and-sweep dead-code elimination: keeps the instructions and phis
/// transitively needed by terminators. Returns the number deleted.
unsigned eliminateDeadInstructions(Function &F,
                                   FunctionReport *Report = nullptr);

/// The MBA-region detection & rewrite pass (step 4 above). \p Solver
/// simplifies flattened regions; \p Checker (when non-null) re-verifies
/// every rewrite. Returns the number of regions rewritten.
unsigned rewriteMBARegions(Context &Ctx, Function &F, MBASolver &Solver,
                           EquivalenceChecker *Checker,
                           const PassOptions &Opts,
                           FunctionReport *Report = nullptr,
                           FailedVerifySet *FailedVerify = nullptr);

//===----------------------------------------------------------------------===//
// The composed pipeline
//===----------------------------------------------------------------------===//

/// Runs the full pipeline on one function with caller-provided solver and
/// checker (pass a null checker to skip verification).
FunctionReport deobfuscateFunction(Context &Ctx, Function &F,
                                   MBASolver &Solver,
                                   EquivalenceChecker *Checker,
                                   const PassOptions &Opts = PassOptions());

/// Runs the full pipeline on every function of \p P, constructing an
/// MBASolver and (when Opts.Verify) a staged BlastBV+RW equivalence checker
/// internally.
ProgramReport deobfuscateProgram(Context &Ctx, Program &P,
                                 const PassOptions &Opts = PassOptions());

} // namespace mba

#endif // MBA_IR_PASSES_H
