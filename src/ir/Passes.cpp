//===- ir/Passes.cpp - MBA deobfuscation passes over the program IR -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Passes.h"

#include "analysis/AbstractInterp.h"
#include "analysis/Prover.h"
#include "ast/ExprUtils.h"
#include "ast/Printer.h"
#include "ir/Dataflow.h"
#include "mba/Metrics.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace mba;

namespace {

telemetry::Counter &regionsFoundCounter() {
  static telemetry::Counter &C = telemetry::counter("ir.regions_found");
  return C;
}
telemetry::Counter &regionsRewrittenCounter() {
  static telemetry::Counter &C = telemetry::counter("ir.regions_rewritten");
  return C;
}
telemetry::Counter &branchesFoldedCounter() {
  static telemetry::Counter &C = telemetry::counter("ir.branches_folded");
  return C;
}
telemetry::Counter &blocksRemovedCounter() {
  static telemetry::Counter &C = telemetry::counter("ir.blocks_removed");
  return C;
}
telemetry::Counter &unsoundBlockedCounter() {
  static telemetry::Counter &C = telemetry::counter("ir.unsound_blocked");
  return C;
}

/// Tries each checker in order; the first definite verdict wins. Sound as
/// long as every link is sound — a NotEquivalent from any link is real.
class ChainChecker : public EquivalenceChecker {
public:
  explicit ChainChecker(
      std::vector<std::unique_ptr<EquivalenceChecker>> Links)
      : Links(std::move(Links)) {}

  std::string name() const override { return "IRVerify"; }

  CheckResult check(const Context &Ctx, const Expr *A, const Expr *B,
                    double TimeoutSeconds) override {
    CheckResult Total;
    Total.Outcome = Verdict::Timeout;
    for (auto &L : Links) {
      CheckResult R = L->check(Ctx, A, B, TimeoutSeconds);
      Total.Seconds += R.Seconds;
      if (R.Outcome != Verdict::Timeout) {
        Total.Outcome = R.Outcome;
        break;
      }
    }
    return Total;
  }

private:
  std::vector<std::unique_ptr<EquivalenceChecker>> Links;
};

/// Rewrites every expression of \p F through \p Map (instruction rhs,
/// branch conditions, return values, phi incomings). Phi destinations and
/// instruction destinations are definitions, never rewritten.
void substituteUses(Context &Ctx, Function &F,
                    const std::unordered_map<const Expr *, const Expr *> &Map) {
  for (BasicBlock &BB : F.Blocks) {
    for (PhiNode &P : BB.Phis)
      for (auto &[Pred, In] : P.Incoming)
        if (auto It = Map.find(In); It != Map.end())
          In = It->second;
    for (IRInst &I : BB.Insts)
      I.Rhs = substitute(Ctx, I.Rhs, Map);
    if (BB.Term.Kind == TermKind::Branch)
      BB.Term.Cond = substitute(Ctx, BB.Term.Cond, Map);
    else if (BB.Term.Kind == TermKind::Ret)
      BB.Term.Value = substitute(Ctx, BB.Term.Value, Map);
  }
}

} // namespace

std::unique_ptr<EquivalenceChecker> mba::makeRegionVerifier(Context &Ctx) {
  std::vector<std::unique_ptr<EquivalenceChecker>> Links;
  Links.push_back(makeSignatureChecker());
  Links.push_back(makeStagedChecker(Ctx, makeBlastChecker(true)));
  return std::make_unique<ChainChecker>(std::move(Links));
}

//===----------------------------------------------------------------------===//
// Flattening
//===----------------------------------------------------------------------===//

const Expr *mba::flattenValue(Context &Ctx, const Function &F,
                              const Expr *V) {
  // rhs of every instruction definition; phi dests and params are absent
  // and therefore stay free.
  std::unordered_map<const Expr *, const Expr *> InstDef;
  for (const BasicBlock &BB : F.Blocks)
    for (const IRInst &I : BB.Insts)
      InstDef.emplace(I.Dest, I.Rhs);

  // Iterative post-order over the definition dependency graph: flatten
  // every instruction-defined variable reachable from V, deepest first.
  std::unordered_map<const Expr *, const Expr *> Flat; // var -> pure expr
  std::vector<std::pair<const Expr *, bool>> Stack;    // (var, expanded)
  auto Push = [&](const Expr *E) {
    for (const Expr *Var : collectVariables(E))
      if (InstDef.count(Var) && !Flat.count(Var))
        Stack.emplace_back(Var, false);
  };
  Push(V);
  while (!Stack.empty()) {
    auto [Var, Expanded] = Stack.back();
    if (Flat.count(Var)) {
      Stack.pop_back();
      continue;
    }
    const Expr *Rhs = InstDef.at(Var);
    if (!Expanded) {
      Stack.back().second = true;
      Push(Rhs);
      continue;
    }
    Stack.pop_back();
    Flat.emplace(Var, substitute(Ctx, Rhs, Flat));
  }
  return substitute(Ctx, V, Flat);
}

//===----------------------------------------------------------------------===//
// Opaque-predicate elimination
//===----------------------------------------------------------------------===//

namespace {

/// True/false decision about a branch condition, with how it was reached.
struct BranchDecision {
  bool Taken = false; ///< condition is nonzero on every execution
  /// Constant value when a domain pinned the condition to one value (the
  /// verification target for the taken direction); nullopt when only
  /// "nonzero" is known.
  std::optional<uint64_t> Value;
};

/// Tries to decide the flattened condition \p C as a global fact (over free
/// phi variables and parameters).
std::optional<BranchDecision> decideGlobally(Context &Ctx, const Expr *C) {
  const Expr *Folded = foldAbstract(Ctx, C);
  if (Folded->isConst())
    return BranchDecision{Folded->constValue() != 0, Folded->constValue()};
  // Prover: Proved C == 0 means never taken; Refuted means C differs from
  // 0 on every input — always taken.
  ProveResult R = proveEquivalence(Ctx, C, Ctx.getZero());
  if (R.Outcome == ProveOutcome::Proved)
    return BranchDecision{false, 0};
  if (R.Outcome == ProveOutcome::Refuted)
    return BranchDecision{true, std::nullopt};
  return std::nullopt;
}

/// Enumerates the phi variables of \p C with their flattened incoming
/// values; used for the bounded one-level case split. Returns nullopt when
/// the split would exceed \p MaxCases or an incoming is itself phi-defined
/// (a deeper split than one level).
std::optional<std::vector<std::pair<const Expr *, std::vector<const Expr *>>>>
phiCaseSplit(Context &Ctx, const Function &F, const Expr *C,
             size_t MaxCases) {
  std::unordered_map<const Expr *, const PhiNode *> PhiOf;
  for (const BasicBlock &BB : F.Blocks)
    for (const PhiNode &P : BB.Phis)
      PhiOf.emplace(P.Dest, &P);

  std::vector<std::pair<const Expr *, std::vector<const Expr *>>> Split;
  size_t Cases = 1;
  for (const Expr *Var : collectVariables(C)) {
    auto It = PhiOf.find(Var);
    if (It == PhiOf.end())
      continue; // parameter: stays free
    std::vector<const Expr *> Values;
    for (const auto &[Pred, In] : It->second->Incoming) {
      const Expr *FlatIn = flattenValue(Ctx, F, In);
      // One level only: a nested phi would need its own split.
      for (const Expr *V : collectVariables(FlatIn))
        if (PhiOf.count(V))
          return std::nullopt;
      Values.push_back(FlatIn);
    }
    Cases *= Values.size();
    if (Cases > MaxCases)
      return std::nullopt;
    Split.emplace_back(Var, std::move(Values));
  }
  if (Split.empty())
    return std::nullopt; // no phis: the global path already decided or not
  return Split;
}

/// Decides \p C by substituting every combination of one-level phi
/// incomings and requiring all cases to agree. Sound: every execution
/// reaching the branch entered each phi through one of its incomings, so
/// the concrete condition value is covered by some case.
std::optional<BranchDecision>
decideByCaseSplit(Context &Ctx, const Function &F, const Expr *C,
                  size_t MaxCases) {
  auto Split = phiCaseSplit(Ctx, F, C, MaxCases);
  if (!Split)
    return std::nullopt;
  std::optional<bool> Agreed;
  std::vector<size_t> Pick(Split->size(), 0);
  while (true) {
    std::unordered_map<const Expr *, const Expr *> Map;
    for (size_t I = 0; I != Split->size(); ++I)
      Map.emplace((*Split)[I].first, (*Split)[I].second[Pick[I]]);
    const Expr *CaseC = substitute(Ctx, C, Map);
    auto D = decideGlobally(Ctx, CaseC);
    if (!D)
      return std::nullopt;
    if (Agreed && *Agreed != D->Taken)
      return std::nullopt; // cases disagree: genuinely input-dependent
    Agreed = D->Taken;
    // Advance the odometer.
    size_t I = 0;
    for (; I != Pick.size(); ++I) {
      if (++Pick[I] < (*Split)[I].second.size())
        break;
      Pick[I] = 0;
    }
    if (I == Pick.size())
      break;
  }
  return BranchDecision{*Agreed, std::nullopt};
}

/// Builds the "always nonzero" verification query: (c | -c) & signbit,
/// which equals signbit iff c != 0 (x | -x has the sign bit set exactly
/// when x is nonzero).
std::pair<const Expr *, const Expr *> nonzeroQuery(Context &Ctx,
                                                   const Expr *C) {
  const Expr *SignBit = Ctx.getConst(1ULL << (Ctx.width() - 1));
  const Expr *Probe = Ctx.getAnd(Ctx.getOr(C, Ctx.getNeg(C)), SignBit);
  return {Probe, SignBit};
}

/// Verifies a branch decision with the checker. For the case-split path the
/// check runs per case (each must verify).
bool verifyDecision(Context &Ctx, const Function &F, const Expr *C,
                    const BranchDecision &D, bool FromCaseSplit,
                    EquivalenceChecker *Checker, const PassOptions &Opts,
                    FunctionReport *Report) {
  if (!Checker)
    return true;
  auto CheckOne = [&](const Expr *Cond) {
    const Expr *A, *B;
    if (!D.Taken) {
      A = Cond;
      B = Ctx.getZero();
    } else if (D.Value) {
      A = Cond;
      B = Ctx.getConst(*D.Value);
    } else {
      std::tie(A, B) = nonzeroQuery(Ctx, Cond);
    }
    CheckResult R = Checker->check(Ctx, A, B, Opts.VerifyTimeout);
    if (R.Outcome == Verdict::NotEquivalent) {
      if (Report)
        ++Report->UnsoundBlocked;
      unsoundBlockedCounter().add();
    }
    return R.Outcome == Verdict::Equivalent;
  };
  if (!FromCaseSplit)
    return CheckOne(C);
  auto Split = phiCaseSplit(Ctx, F, C, 64);
  if (!Split)
    return false;
  std::vector<size_t> Pick(Split->size(), 0);
  while (true) {
    std::unordered_map<const Expr *, const Expr *> Map;
    for (size_t I = 0; I != Split->size(); ++I)
      Map.emplace((*Split)[I].first, (*Split)[I].second[Pick[I]]);
    if (!CheckOne(substitute(Ctx, C, Map)))
      return false;
    size_t I = 0;
    for (; I != Pick.size(); ++I) {
      if (++Pick[I] < (*Split)[I].second.size())
        break;
      Pick[I] = 0;
    }
    if (I == Pick.size())
      break;
  }
  return true;
}

} // namespace

unsigned mba::foldOpaqueBranches(Context &Ctx, Function &F,
                                 EquivalenceChecker *Checker,
                                 const PassOptions &Opts,
                                 FunctionReport *Report,
                                 FailedVerifySet *FailedVerify) {
  MBA_TRACE_SPAN("ir.fold_branches");
  CFG G = CFG::build(F);
  std::vector<bool> Reach = reachableBlocks(G);

  // Flow-sensitive analyses are shared across the branches of the function
  // (they analyze every SSA value at once).
  KnownBitsDomain KBD(Ctx.mask());
  ParityDomain PD(Ctx.width());
  IntervalDomain ID(Ctx.mask());
  FlowAnalysis<KnownBitsDomain> KBA(KBD, F, G);
  FlowAnalysis<ParityDomain> PA(PD, F, G);
  FlowAnalysis<IntervalDomain> IA(ID, F, G);

  unsigned Folded = 0;
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    if (!Reach[B])
      continue;
    BasicBlock &BB = F.Blocks[B];
    if (BB.Term.Kind != TermKind::Branch)
      continue;
    // A branch with identical targets is trivially a jump; no proof needed.
    if (BB.Term.Succs[0] == BB.Term.Succs[1]) {
      BB.Term = Terminator{TermKind::Jump, nullptr,
                           {BB.Term.Succs[0], 0}, nullptr, BB.Term.Loc};
      ++Folded;
      continue;
    }

    const Expr *C = flattenValue(Ctx, F, BB.Term.Cond);
    uint64_t FP = exprFingerprint(C);
    // A condition whose verification already failed once stays undecided —
    // the query would time out again, at full cost, every iteration.
    if (FailedVerify && FailedVerify->count(FP))
      continue;
    bool FromCaseSplit = false;
    std::optional<BranchDecision> D = decideGlobally(Ctx, C);
    if (!D) {
      // Flow-sensitive: the analyses know phi joins and edge refinements
      // the global fold cannot see. The decision is then verified by the
      // one-level case split, so only conditions the split covers fold.
      std::optional<uint64_t> FlowConst = KBA.constantOf(BB.Term.Cond);
      if (!FlowConst)
        FlowConst = PA.constantOf(BB.Term.Cond);
      if (!FlowConst)
        FlowConst = IA.constantOf(BB.Term.Cond);
      if (FlowConst) {
        D = BranchDecision{*FlowConst != 0, std::nullopt};
        FromCaseSplit = true;
      } else {
        D = decideByCaseSplit(Ctx, F, C, 16);
        FromCaseSplit = D.has_value();
      }
      // A flow-derived decision must survive the case-split re-derivation
      // (the split is the sound argument; the analyses only nominate).
      if (D && FromCaseSplit && !Checker) {
        auto Confirm = decideByCaseSplit(Ctx, F, C, 16);
        if (!Confirm || Confirm->Taken != D->Taken)
          D = std::nullopt;
      }
    }
    if (!D)
      continue;
    if (!verifyDecision(Ctx, F, C, *D, FromCaseSplit, Checker, Opts,
                        Report)) {
      if (FailedVerify)
        FailedVerify->insert(FP);
      continue;
    }

    unsigned Live = D->Taken ? BB.Term.Succs[0] : BB.Term.Succs[1];
    unsigned Dead = D->Taken ? BB.Term.Succs[1] : BB.Term.Succs[0];
    BB.Term = Terminator{TermKind::Jump, nullptr, {Live, 0}, nullptr,
                         BB.Term.Loc};
    // The edge B -> Dead no longer exists; its phi incomings are stale.
    for (PhiNode &P : F.Blocks[Dead].Phis)
      P.Incoming.erase(std::remove_if(P.Incoming.begin(), P.Incoming.end(),
                                      [&](const auto &In) {
                                        return In.first == B;
                                      }),
                       P.Incoming.end());
    ++Folded;
  }
  if (Folded) {
    branchesFoldedCounter().add(Folded);
    if (Report)
      Report->BranchesFolded += Folded;
  }
  return Folded;
}

//===----------------------------------------------------------------------===//
// Unreachable-block removal
//===----------------------------------------------------------------------===//

unsigned mba::removeUnreachableBlocks(Function &F, FunctionReport *Report) {
  CFG G = CFG::build(F);
  std::vector<bool> Reach = reachableBlocks(G);
  unsigned N = F.numBlocks();
  std::vector<unsigned> NewId(N, ~0U);
  unsigned Next = 0;
  for (unsigned B = 0; B != N; ++B)
    if (Reach[B])
      NewId[B] = Next++;
  if (Next == N)
    return 0;

  std::vector<BasicBlock> Kept;
  Kept.reserve(Next);
  for (unsigned B = 0; B != N; ++B) {
    if (!Reach[B])
      continue;
    BasicBlock BB = std::move(F.Blocks[B]);
    for (PhiNode &P : BB.Phis) {
      P.Incoming.erase(std::remove_if(P.Incoming.begin(), P.Incoming.end(),
                                      [&](const auto &In) {
                                        return !Reach[In.first];
                                      }),
                       P.Incoming.end());
      for (auto &[Pred, In] : P.Incoming)
        Pred = NewId[Pred];
    }
    for (unsigned I = 0; I != BB.Term.numSuccessors(); ++I)
      BB.Term.Succs[I] = NewId[BB.Term.Succs[I]];
    Kept.push_back(std::move(BB));
  }
  unsigned Removed = N - Next;
  F.Blocks = std::move(Kept);
  blocksRemovedCounter().add(Removed);
  if (Report) {
    Report->BlocksRemoved += Removed;
    Report->InstsRemoved += 0; // instructions in removed blocks are gone
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Trivial-phi simplification
//===----------------------------------------------------------------------===//

unsigned mba::simplifyTrivialPhis(Context &Ctx, Function &F,
                                  FunctionReport *Report) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock &BB : F.Blocks) {
      for (size_t I = 0; I != BB.Phis.size(); ++I) {
        PhiNode &P = BB.Phis[I];
        if (P.Incoming.empty())
          continue; // unreachable junk; removeUnreachableBlocks handles it
        const Expr *V = P.Incoming[0].second;
        bool AllSame = true;
        for (const auto &[Pred, In] : P.Incoming)
          if (In != V) {
            AllSame = false;
            break;
          }
        // A phi referencing only itself plus one other value is also
        // trivial (a loop-carried copy): x = phi [a: v], [loop: x].
        if (!AllSame) {
          const Expr *Other = nullptr;
          bool Trivial = true;
          for (const auto &[Pred, In] : P.Incoming) {
            if (In == P.Dest)
              continue;
            if (Other && In != Other) {
              Trivial = false;
              break;
            }
            Other = In;
          }
          if (Trivial && Other) {
            AllSame = true;
            V = Other;
          }
        }
        if (!AllSame)
          continue;
        std::unordered_map<const Expr *, const Expr *> Map{{P.Dest, V}};
        BB.Phis.erase(BB.Phis.begin() + (long)I);
        substituteUses(Ctx, F, Map);
        ++Removed;
        Changed = true;
        --I;
      }
    }
  }
  if (Report)
    Report->PhisSimplified += Removed;
  return Removed;
}

//===----------------------------------------------------------------------===//
// Dead-instruction elimination
//===----------------------------------------------------------------------===//

unsigned mba::eliminateDeadInstructions(Function &F,
                                        FunctionReport *Report) {
  // Mark: roots are the values terminators read.
  std::unordered_set<const Expr *> Live;
  std::vector<const Expr *> Work;
  auto MarkExpr = [&](const Expr *E) {
    for (const Expr *V : collectVariables(E))
      if (Live.insert(V).second)
        Work.push_back(V);
  };
  for (const BasicBlock &BB : F.Blocks) {
    if (BB.Term.Kind == TermKind::Branch)
      MarkExpr(BB.Term.Cond);
    else if (BB.Term.Kind == TermKind::Ret)
      MarkExpr(BB.Term.Value);
  }
  std::unordered_map<const Expr *, const Expr *> InstDef;
  std::unordered_map<const Expr *, const PhiNode *> PhiDef;
  for (const BasicBlock &BB : F.Blocks) {
    for (const IRInst &I : BB.Insts)
      InstDef.emplace(I.Dest, I.Rhs);
    for (const PhiNode &P : BB.Phis)
      PhiDef.emplace(P.Dest, &P);
  }
  while (!Work.empty()) {
    const Expr *V = Work.back();
    Work.pop_back();
    if (auto It = InstDef.find(V); It != InstDef.end()) {
      MarkExpr(It->second);
    } else if (auto It2 = PhiDef.find(V); It2 != PhiDef.end()) {
      for (const auto &[Pred, In] : It2->second->Incoming)
        if (In->isVar() && Live.insert(In).second)
          Work.push_back(In);
    }
  }

  // Sweep.
  unsigned Removed = 0;
  for (BasicBlock &BB : F.Blocks) {
    auto DeadInst = [&](const IRInst &I) { return !Live.count(I.Dest); };
    auto DeadPhi = [&](const PhiNode &P) { return !Live.count(P.Dest); };
    Removed += (unsigned)std::count_if(BB.Insts.begin(), BB.Insts.end(),
                                       DeadInst);
    Removed += (unsigned)std::count_if(BB.Phis.begin(), BB.Phis.end(),
                                       DeadPhi);
    BB.Insts.erase(std::remove_if(BB.Insts.begin(), BB.Insts.end(),
                                  DeadInst),
                   BB.Insts.end());
    BB.Phis.erase(std::remove_if(BB.Phis.begin(), BB.Phis.end(), DeadPhi),
                  BB.Phis.end());
  }
  if (Report)
    Report->InstsRemoved += Removed;
  return Removed;
}

//===----------------------------------------------------------------------===//
// MBA-region detection & rewrite
//===----------------------------------------------------------------------===//

unsigned mba::rewriteMBARegions(Context &Ctx, Function &F, MBASolver &Solver,
                                EquivalenceChecker *Checker,
                                const PassOptions &Opts,
                                FunctionReport *Report,
                                FailedVerifySet *FailedVerify) {
  MBA_TRACE_SPAN("ir.region_rewrite");
  DefUseInfo DU = DefUseInfo::build(F);

  // Region roots: instructions whose value escapes the pure instruction
  // dataflow — used by a phi, a branch condition, or a return. Everything
  // an escaping instruction transitively computes through other
  // instructions is its region (flattening walks exactly that slice, so
  // the region is the maximal single-exit subgraph rooted there).
  struct Root {
    unsigned Block;
    unsigned Index;
  };
  std::vector<Root> Roots;
  for (unsigned B = 0; B != F.numBlocks(); ++B)
    for (unsigned I = 0; I != F.Blocks[B].Insts.size(); ++I) {
      const Expr *Dest = F.Blocks[B].Insts[I].Dest;
      bool Escapes = false;
      for (const UseSite &U : DU.usesOf(Dest))
        if (U.Kind != UseSite::InstOp) {
          Escapes = true;
          break;
        }
      if (Escapes)
        Roots.push_back({B, I});
    }

  // Count the instructions each flattening consumes (region size).
  std::unordered_map<const Expr *, std::pair<unsigned, unsigned>> InstAt;
  for (unsigned B = 0; B != F.numBlocks(); ++B)
    for (unsigned I = 0; I != F.Blocks[B].Insts.size(); ++I)
      InstAt.emplace(F.Blocks[B].Insts[I].Dest, std::make_pair(B, I));
  auto RegionInsts = [&](const Expr *Dest) {
    std::unordered_set<const Expr *> Seen;
    std::vector<const Expr *> WL{Dest};
    Seen.insert(Dest);
    while (!WL.empty()) {
      const Expr *V = WL.back();
      WL.pop_back();
      auto It = InstAt.find(V);
      if (It == InstAt.end())
        continue;
      const IRInst &I = F.Blocks[It->second.first].Insts[It->second.second];
      for (const Expr *Op : collectVariables(I.Rhs))
        if (InstAt.count(Op) && Seen.insert(Op).second)
          WL.push_back(Op);
    }
    size_t N = 0;
    for (const Expr *V : Seen)
      if (InstAt.count(V))
        ++N;
    return N;
  };

  unsigned Rewritten = 0;
  for (const Root &R : Roots) {
    IRInst &Inst = F.Blocks[R.Block].Insts[R.Index];
    const Expr *Flat = flattenValue(Ctx, F, Inst.Dest);
    if (countDagNodes(Flat) > Opts.MaxRegionNodes)
      continue;
    uint64_t AltBefore = mbaAlternation(Flat);
    if (AltBefore < Opts.MinAlternation)
      continue;
    uint64_t FP = exprFingerprint(Flat);
    // Already attempted (and reported) in an earlier pipeline iteration;
    // the verification would fail again at full timeout cost.
    if (FailedVerify && FailedVerify->count(FP))
      continue;

    RegionInfo Info;
    Info.Root = Inst.Dest->varName();
    Info.Block = F.Blocks[R.Block].Name;
    Info.NumInsts = RegionInsts(Inst.Dest);
    Info.NodesBefore = countDagNodes(Flat);
    Info.AlternationBefore = AltBefore;
    regionsFoundCounter().add();
    if (Report)
      ++Report->RegionsFound;

    const Expr *Simp = Solver.simplify(foldAbstract(Ctx, Flat));
    uint64_t AltAfter = mbaAlternation(Simp);
    Info.NodesAfter = countDagNodes(Simp);
    Info.AlternationAfter = AltAfter;

    // Rewrite only on strict improvement: lower alternation, or equal
    // alternation with a smaller DAG.
    bool Better = AltAfter < AltBefore ||
                  (AltAfter == AltBefore &&
                   Info.NodesAfter < Info.NodesBefore);
    if (Better && Simp != Flat) {
      if (Checker) {
        CheckResult CR = Checker->check(Ctx, Flat, Simp,
                                        Opts.VerifyTimeout);
        if (CR.Outcome == Verdict::NotEquivalent) {
          // An unsound simplification candidate (only possible with a
          // custom ExperimentalRule): blocked, never installed.
          unsoundBlockedCounter().add();
          if (Report)
            ++Report->UnsoundBlocked;
          if (FailedVerify)
            FailedVerify->insert(FP);
          Better = false;
        } else if (CR.Outcome == Verdict::Timeout) {
          Info.VerifyTimedOut = true;
          if (FailedVerify)
            FailedVerify->insert(FP);
          Better = false;
        } else {
          Info.Verified = true;
        }
      }
      if (Better) {
        // Sound by SSA dominance: every variable of Simp is a parameter
        // or a phi/instruction definition that (transitively) dominates
        // this instruction, so referencing it here is legal.
        Inst.Rhs = Simp;
        Info.Rewritten = true;
        ++Rewritten;
        regionsRewrittenCounter().add();
        if (Report)
          ++Report->RegionsRewritten;
      }
    }
    if (Report)
      Report->Regions.push_back(std::move(Info));
  }
  return Rewritten;
}

//===----------------------------------------------------------------------===//
// The composed pipeline
//===----------------------------------------------------------------------===//

FunctionReport mba::deobfuscateFunction(Context &Ctx, Function &F,
                                        MBASolver &Solver,
                                        EquivalenceChecker *Checker,
                                        const PassOptions &Opts) {
  MBA_TRACE_SPAN("ir.deobfuscate_function");
  FunctionReport Report;
  Report.Name = F.Name;
  Report.BlocksBefore = F.numBlocks();
  Report.InstsBefore = countFunctionInsts(F);
  Report.NodesBefore = countFunctionNodes(F);

  FailedVerifySet FailedVerify;
  for (unsigned Iter = 0; Iter != Opts.MaxIterations; ++Iter) {
    unsigned Changes = 0;
    Changes += foldOpaqueBranches(Ctx, F, Checker, Opts, &Report,
                                  &FailedVerify);
    Changes += removeUnreachableBlocks(F, &Report);
    Changes += simplifyTrivialPhis(Ctx, F, &Report);
    Changes += rewriteMBARegions(Ctx, F, Solver, Checker, Opts, &Report,
                                 &FailedVerify);
    Changes += eliminateDeadInstructions(F, &Report);
    if (!Changes)
      break;
  }

  Report.BlocksAfter = F.numBlocks();
  Report.InstsAfter = countFunctionInsts(F);
  Report.NodesAfter = countFunctionNodes(F);
  return Report;
}

ProgramReport mba::deobfuscateProgram(Context &Ctx, Program &P,
                                      const PassOptions &Opts) {
  MBA_TRACE_SPAN("ir.deobfuscate");
  MBASolver Solver(Ctx, Opts.Simplify);
  std::unique_ptr<EquivalenceChecker> Checker;
  if (Opts.Verify)
    Checker = makeRegionVerifier(Ctx);

  ProgramReport Report;
  for (Function &F : P.Functions)
    Report.Functions.push_back(
        deobfuscateFunction(Ctx, F, Solver, Checker.get(), Opts));
  return Report;
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

std::string FunctionReport::str() const {
  std::string S = "func @" + Name + ": blocks " +
                  std::to_string(BlocksBefore) + " -> " +
                  std::to_string(BlocksAfter) + ", insts " +
                  std::to_string(InstsBefore) + " -> " +
                  std::to_string(InstsAfter) + ", nodes " +
                  std::to_string(NodesBefore) + " -> " +
                  std::to_string(NodesAfter) + "\n";
  S += "  regions: " + std::to_string(RegionsFound) + " found, " +
       std::to_string(RegionsRewritten) + " rewritten; branches folded: " +
       std::to_string(BranchesFolded) + "; blocks removed: " +
       std::to_string(BlocksRemoved) + "; phis simplified: " +
       std::to_string(PhisSimplified) + "; insts removed: " +
       std::to_string(InstsRemoved) + "\n";
  if (UnsoundBlocked)
    S += "  UNSOUND CANDIDATES BLOCKED: " + std::to_string(UnsoundBlocked) +
         "\n";
  for (const RegionInfo &R : Regions) {
    S += "  region @" + R.Block + "/" + R.Root + ": " +
         std::to_string(R.NumInsts) + " insts, alternation " +
         std::to_string(R.AlternationBefore) + " -> " +
         std::to_string(R.AlternationAfter) + ", nodes " +
         std::to_string(R.NodesBefore) + " -> " +
         std::to_string(R.NodesAfter);
    if (R.Rewritten)
      S += R.Verified ? " [rewritten, verified]" : " [rewritten]";
    else if (R.VerifyTimedOut)
      S += " [kept: verification timeout]";
    else
      S += " [kept]";
    S += "\n";
  }
  return S;
}

size_t ProgramReport::totalRegionsFound() const {
  size_t N = 0;
  for (const FunctionReport &F : Functions)
    N += F.RegionsFound;
  return N;
}

size_t ProgramReport::totalRegionsRewritten() const {
  size_t N = 0;
  for (const FunctionReport &F : Functions)
    N += F.RegionsRewritten;
  return N;
}

size_t ProgramReport::totalBranchesFolded() const {
  size_t N = 0;
  for (const FunctionReport &F : Functions)
    N += F.BranchesFolded;
  return N;
}

size_t ProgramReport::totalUnsoundBlocked() const {
  size_t N = 0;
  for (const FunctionReport &F : Functions)
    N += F.UnsoundBlocked;
  return N;
}

std::string ProgramReport::str() const {
  std::string S;
  for (const FunctionReport &F : Functions)
    S += F.str();
  S += "total: " + std::to_string(totalRegionsFound()) + " regions found, " +
       std::to_string(totalRegionsRewritten()) + " rewritten, " +
       std::to_string(totalBranchesFolded()) + " branches folded";
  if (size_t U = totalUnsoundBlocked())
    S += ", " + std::to_string(U) + " unsound candidates blocked";
  S += "\n";
  return S;
}
