//===- analysis/EGraph.h - E-graph with congruence closure ------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hash-consed e-graph over MBA expressions: a union-find of equivalence
/// classes (e-classes) whose members are operator nodes (e-nodes) with
/// e-class operands, maintained congruently — if `a ≡ a'` and `b ≡ b'`,
/// then `a + b ≡ a' + b'` after rebuild(). The e-graph is the substrate of
/// the static equivalence prover (analysis/Prover.h): expressions are added,
/// certified rewrite rules are applied as e-class merges (equality
/// saturation), and two expressions are proved equivalent when their
/// e-classes coincide.
///
/// The design follows the egg recipe (Willsey et al., POPL 2021): a
/// hashcons map from canonical e-nodes to e-classes, per-class parent lists,
/// deferred congruence repair through a dirty-class worklist, and constant
/// e-nodes folded eagerly so arithmetic identities (`2*3 ≡ 6`) come out of
/// the closure for free.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_ANALYSIS_EGRAPH_H
#define MBA_ANALYSIS_EGRAPH_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mba {

/// Identifier of an e-class. Stable across merges (ids are never reused),
/// but only canonical ids — `find(Id)` — index live classes.
using EClassId = uint32_t;

/// One e-node: an operator applied to e-class operands, or a leaf. Compared
/// and hashed on the canonical form (kind, canonical child ids, payload).
struct ENode {
  ExprKind Kind = ExprKind::Const;
  EClassId Lhs = 0;  ///< first operand class; unused for leaves
  EClassId Rhs = 0;  ///< second operand class; unused for leaves/unary
  uint64_t Aux = 0;  ///< Const: value (masked); Var: dense variable index

  bool operator==(const ENode &O) const {
    return Kind == O.Kind && Lhs == O.Lhs && Rhs == O.Rhs && Aux == O.Aux;
  }
};

/// An e-graph over the expression language of one Context. The context
/// supplies the bit width (constants are folded modulo its mask) and the
/// variable numbering; extraction builds result expressions in it.
class EGraph {
public:
  explicit EGraph(Context &Ctx);

  Context &context() const { return Ctx; }

  /// Adds every node of \p E and returns its e-class.
  EClassId addExpr(const Expr *E);

  /// Adds a leaf e-node for variable \p VarIndex / constant \p Value.
  EClassId addVar(unsigned VarIndex);
  EClassId addConst(uint64_t Value);

  /// Adds an operator e-node over canonical operand classes. Unary kinds
  /// ignore \p B. Constant operands are folded: an operator whose operand
  /// classes are all constant becomes (is merged with) the result constant.
  EClassId addNode(ExprKind K, EClassId A, EClassId B = 0);

  /// Canonical representative of \p Id's class.
  EClassId find(EClassId Id) const;

  /// Asserts `A ≡ B`. Returns true when the classes were distinct (the
  /// e-graph changed). Congruence is restored lazily: call rebuild() after
  /// a batch of merges and before the next query/match pass.
  bool merge(EClassId A, EClassId B);

  /// Restores the congruence invariant after merge() calls: parents of
  /// merged classes are re-canonicalized and colliding ones merged, to a
  /// fixpoint. No-op when nothing is dirty.
  void rebuild();

  /// True when \p A and \p B are known equal (same canonical class).
  bool sameClass(EClassId A, EClassId B) const { return find(A) == find(B); }

  /// The constant value of \p Id's class, when it contains a Const e-node.
  std::optional<uint64_t> constantOf(EClassId Id) const;

  /// E-nodes currently stored in \p Id's class (canonicalized as of the
  /// last rebuild). Invalidated by addNode/merge/rebuild.
  const std::vector<ENode> &nodesOf(EClassId Id) const;

  /// Extracts a minimal-size expression of \p Id's class into the context
  /// (cost = tree node count, ties broken by first discovery). Returns
  /// nullptr only for classes poisoned by extraction cycles, which cannot
  /// happen for classes reachable from addExpr() roots.
  const Expr *extract(EClassId Id) const;

  /// All canonical class ids (live classes), for match loops.
  std::vector<EClassId> canonicalClasses() const;

  /// Statistics: total e-nodes in the hashcons / live classes / merges.
  size_t numNodes() const { return Hashcons.size(); }
  size_t numClasses() const;
  size_t numMerges() const { return Merges; }

private:
  struct ENodeHash {
    size_t operator()(const ENode &N) const {
      uint64_t H = (uint64_t)N.Kind * 0x9e3779b97f4a7c15ULL;
      H ^= N.Lhs + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H ^= N.Rhs + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H ^= N.Aux + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      return (size_t)H;
    }
  };

  struct EClass {
    std::vector<ENode> Nodes;
    /// Operator e-nodes (as last interned) that use this class as an
    /// operand, with the class they live in. Drives congruence repair.
    std::vector<std::pair<ENode, EClassId>> Parents;
    std::optional<uint64_t> Const;
  };

  /// Canonicalizes \p N's operand ids (leaves unchanged).
  ENode canonicalize(ENode N) const;

  /// Interns canonical \p N, creating a class when unseen.
  EClassId intern(const ENode &N);

  /// Evaluates \p K over constant operands, modulo the context mask.
  uint64_t evalOp(ExprKind K, uint64_t A, uint64_t B) const;

  Context &Ctx;
  mutable std::vector<EClassId> Parent; ///< union-find (path-halving in find)
  std::vector<EClass> Classes;          ///< indexed by canonical id
  std::unordered_map<ENode, EClassId, ENodeHash> Hashcons;
  std::vector<EClassId> Dirty; ///< classes whose parents need repair
  size_t Merges = 0;
};

} // namespace mba

#endif // MBA_ANALYSIS_EGRAPH_H
