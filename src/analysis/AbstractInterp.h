//===- analysis/AbstractInterp.h - Abstract interpretation ------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward dataflow engine over expression DAGs with pluggable
/// abstract domains. Each domain assigns every node an input-independent
/// over-approximation of its value set over Z/2^w; the engine walks the DAG
/// once in post-order and applies the domain's transfer functions.
///
/// Three domains are provided:
///  * **Known bits** (analysis/KnownBits.h) — per-bit 0/1 facts with
///    carry-aware arithmetic transfer from the least-significant end.
///  * **Parity / congruence** — value mod 2^k facts. Exploits the DAG's
///    operand sharing (hash-consing makes `x + x` a node whose operands are
///    pointer-equal), so e.g. `e + e ≡ 0 (mod 2)` holds even when nothing
///    is known about `e`.
///  * **Unsigned interval** — [Lo, Hi] magnitude bounds, propagated from
///    the most-significant end (the exact complement of known-bits' trailing
///    windows): `(x & 3) + 252` at width 8 lies in [252, 255], which fixes
///    the high six bits even though no trailing bit is known.
///
/// Uses:
///  * foldAbstract() — a constant-folding pre-pass strictly stronger than
///    foldKnownBits(): a sub-expression folds when *any* domain decides it.
///  * refuteEquivalence() — a static soundness check for rewrites: when the
///    abstract values of `e` and `e'` are disjoint in some domain, the
///    rewrite `e -> e'` provably changes semantics (on every input), without
///    ever calling an SMT solver. Used by the rewrite auditor.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_ANALYSIS_ABSTRACTINTERP_H
#define MBA_ANALYSIS_ABSTRACTINTERP_H

#include "analysis/KnownBits.h"
#include "ast/Context.h"
#include "ast/Expr.h"
#include "ast/ExprUtils.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace mba {

/// Mask of the low \p N bits (N <= 64).
inline constexpr uint64_t lowBitsMask(unsigned N) {
  return N >= 64 ? ~0ULL : ((1ULL << N) - 1);
}

//===----------------------------------------------------------------------===//
// Abstract values
//===----------------------------------------------------------------------===//

/// Congruence fact: the value is ≡ Residue (mod 2^KnownLow), i.e. the low
/// KnownLow bits are exactly Residue's. KnownLow == 0 is top (nothing
/// known); KnownLow == width means the value is the constant Residue.
struct Parity {
  unsigned KnownLow = 0;
  uint64_t Residue = 0; ///< reduced mod 2^KnownLow

  bool isTop() const { return KnownLow == 0; }
};

/// Unsigned range fact: Lo <= value <= Hi, both within the context mask.
/// [0, mask] is top.
struct Interval {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool contains(uint64_t V) const { return Lo <= V && V <= Hi; }
};

//===----------------------------------------------------------------------===//
// Domains
//===----------------------------------------------------------------------===//
//
// A domain models the engine's Domain concept:
//   using Value = ...;
//   Value top() const;
//   Value constant(uint64_t C) const;
//   Value unary(ExprKind K, const Value &A) const;
//   Value binary(ExprKind K, const Value &A, const Value &B,
//                bool SameOperand) const;     // SameOperand: lhs == rhs node
//   std::optional<uint64_t> asConstant(const Value &V) const;
//   bool disjoint(const Value &A, const Value &B) const;
//
// disjoint(A, B) must only return true when the concretizations are
// provably non-intersecting — then two expressions with those abstract
// values differ on *every* input.

/// The historical known-bits analysis as an engine domain. Transfer
/// functions are exactly the pre-framework ones (SameOperand is ignored),
/// so this domain doubles as the regression baseline the newer domains are
/// measured against.
class KnownBitsDomain {
public:
  using Value = KnownBits;

  explicit KnownBitsDomain(uint64_t Mask) : Mask(Mask) {}

  Value top() const { return KnownBits(); }
  Value constant(uint64_t C) const;
  Value unary(ExprKind K, const Value &A) const;
  Value binary(ExprKind K, const Value &A, const Value &B,
               bool SameOperand) const;
  std::optional<uint64_t> asConstant(const Value &V) const {
    if (V.isConstant(Mask))
      return V.One;
    return std::nullopt;
  }
  bool disjoint(const Value &A, const Value &B) const {
    return ((A.One & B.Zero) | (A.Zero & B.One)) != 0;
  }

private:
  uint64_t Mask;
};

/// Congruences modulo powers of two.
class ParityDomain {
public:
  using Value = Parity;

  explicit ParityDomain(unsigned Width) : Width(Width) {}

  Value top() const { return Parity(); }
  Value constant(uint64_t C) const { return make(Width, C); }
  Value unary(ExprKind K, const Value &A) const;
  Value binary(ExprKind K, const Value &A, const Value &B,
               bool SameOperand) const;
  std::optional<uint64_t> asConstant(const Value &V) const {
    if (V.KnownLow >= Width)
      return V.Residue;
    return std::nullopt;
  }
  bool disjoint(const Value &A, const Value &B) const {
    unsigned M = std::min(A.KnownLow, B.KnownLow);
    return M > 0 &&
           (A.Residue & lowBitsMask(M)) != (B.Residue & lowBitsMask(M));
  }

private:
  Value make(unsigned KnownLow, uint64_t Residue) const {
    KnownLow = std::min(KnownLow, Width);
    return Parity{KnownLow, Residue & lowBitsMask(KnownLow)};
  }

  unsigned Width;
};

/// Unsigned intervals within [0, mask].
class IntervalDomain {
public:
  using Value = Interval;

  explicit IntervalDomain(uint64_t Mask) : Mask(Mask) {}

  Value top() const { return Interval{0, Mask}; }
  Value constant(uint64_t C) const { return Interval{C & Mask, C & Mask}; }
  Value unary(ExprKind K, const Value &A) const;
  Value binary(ExprKind K, const Value &A, const Value &B,
               bool SameOperand) const;
  std::optional<uint64_t> asConstant(const Value &V) const {
    if (V.Lo == V.Hi)
      return V.Lo;
    return std::nullopt;
  }
  bool disjoint(const Value &A, const Value &B) const {
    return A.Hi < B.Lo || B.Hi < A.Lo;
  }

private:
  uint64_t Mask;
};

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

/// Computes the abstract value of \p E in domain \p D, memoizing every
/// sub-node into \p Memo. Nodes already present are trusted; repeated calls
/// with a shared memo are incremental.
template <class Domain>
typename Domain::Value
computeAbstract(const Domain &D, const Expr *E,
                std::unordered_map<const Expr *, typename Domain::Value>
                    &Memo) {
  if (auto It = Memo.find(E); It != Memo.end())
    return It->second;
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (Memo.find(N) != Memo.end())
      return;
    typename Domain::Value V;
    switch (N->kind()) {
    case ExprKind::Var:
      V = D.top();
      break;
    case ExprKind::Const:
      V = D.constant(N->constValue());
      break;
    case ExprKind::Not:
    case ExprKind::Neg:
      V = D.unary(N->kind(), Memo.at(N->operand()));
      break;
    default:
      V = D.binary(N->kind(), Memo.at(N->lhs()), Memo.at(N->rhs()),
                   N->lhs() == N->rhs());
      break;
    }
    Memo.emplace(N, V);
  });
  return Memo.at(E);
}

/// Convenience single-shot entry points.
Parity computeParity(const Context &Ctx, const Expr *E);
Interval computeInterval(const Context &Ctx, const Expr *E);

/// Multi-domain constant folding: folds every sub-expression that any of
/// the three domains proves constant. Strictly subsumes foldKnownBits().
const Expr *foldAbstract(Context &Ctx, const Expr *E);

/// A static disproof of `A == B`, produced without solving.
struct Refutation {
  std::string Domain; ///< "known-bits", "parity", or "interval"
  std::string Detail; ///< human-readable description of the conflict
};

/// Tries to refute `A == B` by comparing abstract values in each domain.
/// A result means the two expressions provably differ on every input; no
/// result means the domains cannot distinguish them (NOT a proof of
/// equivalence).
std::optional<Refutation> refuteEquivalence(const Context &Ctx,
                                            const Expr *A, const Expr *B);

} // namespace mba

#endif // MBA_ANALYSIS_ABSTRACTINTERP_H
