//===- analysis/Prover.h - Static equivalence prover ------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static equivalence prover over MBA expressions: congruence closure on
/// an e-graph (analysis/EGraph.h) plus bounded equality saturation with the
/// certified rewrite-rule table (analysis/Rules.h), with disproof delegated
/// to the abstract domains (analysis/AbstractInterp.h).
///
/// `proveEquivalence(Ctx, A, B, budget)` returns one of three verdicts:
///
///  * **Proved** — `A == B` on every input of every width the rules hold
///    at (the rules are all-width certified, so on all of Z/2^w). Found by
///    congruence closure alone, or by saturation within the budget.
///  * **Refuted** — `A != B` on *every* input (abstract values disjoint in
///    some domain).
///  * **Unknown** — the budget ran out or the rules don't bridge the gap;
///    the caller falls back to a real solver.
///
/// Proved/Refuted are sound, never heuristic: the prover is safe to
/// short-circuit an SMT query (stage 0 of solvers/EquivalenceChecker) and
/// to feed simplification (the saturate-and-extract pre-pass).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_ANALYSIS_PROVER_H
#define MBA_ANALYSIS_PROVER_H

#include "analysis/Rules.h"
#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <string>

namespace mba {

/// Saturation budget. Saturation stops at whichever limit hits first; the
/// e-graph may slightly overshoot MaxENodes (the pass that crosses the
/// limit completes, so the final sameClass check sees its merges).
struct ProveBudget {
  unsigned MaxIterations = 8; ///< rule-application rounds
  size_t MaxENodes = 4096;    ///< e-graph size cap
  size_t MaxMatchesPerRule = 256; ///< per-rule, per-round match cap
};

/// The three-valued verdict of the static prover.
enum class ProveOutcome : uint8_t {
  Proved,  ///< equal on every input (sound)
  Refuted, ///< different on every input (sound)
  Unknown  ///< undecided within budget — ask a solver
};

const char *proveOutcomeName(ProveOutcome O);

/// Saturation counters, reported through the bench harness.
struct ProveStats {
  unsigned Iterations = 0; ///< completed saturation rounds
  size_t ENodes = 0;       ///< final e-graph size
  size_t EClasses = 0;
  size_t Merges = 0;  ///< union operations performed
  size_t Matches = 0; ///< rule matches applied
};

/// Outcome of one proveEquivalence query.
struct ProveResult {
  ProveOutcome Outcome = ProveOutcome::Unknown;
  std::string Detail; ///< "syntactic", "congruence", rule stats, or the
                      ///< refuting domain
  ProveStats Stats;
};

/// The equality-saturation prover. Stateless between prove() calls except
/// for the borrowed rule set; cheap to construct.
class Prover {
public:
  /// Uses \p Rules, or the shipped certified table when null. Uncertified
  /// rules in a custom set are skipped — certification gates participation.
  explicit Prover(Context &Ctx, const RuleSet *Rules = nullptr);

  /// Decides A == B within \p Budget.
  ProveResult prove(const Expr *A, const Expr *B,
                    const ProveBudget &Budget = ProveBudget());

  /// Saturation as a simplification pre-pass: saturates the e-graph of
  /// \p E and extracts the smallest equivalent expression discovered
  /// (possibly \p E itself).
  const Expr *saturateAndExtract(const Expr *E,
                                 const ProveBudget &Budget = ProveBudget());

private:
  Context &Ctx;
  const RuleSet *Rules;
};

/// One-shot convenience wrapper around Prover::prove.
ProveResult proveEquivalence(Context &Ctx, const Expr *A, const Expr *B,
                             const ProveBudget &Budget = ProveBudget());

} // namespace mba

#endif // MBA_ANALYSIS_PROVER_H
