//===- analysis/KnownBits.cpp - Known-bits dataflow analysis --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/KnownBits.h"

#include "analysis/AbstractInterp.h"
#include "ast/ExprUtils.h"

using namespace mba;

KnownBits
mba::computeKnownBits(const Context &Ctx, const Expr *E,
                      std::unordered_map<const Expr *, KnownBits> &Memo) {
  KnownBitsDomain D(Ctx.mask());
  return computeAbstract(D, E, Memo);
}

KnownBits mba::computeKnownBits(const Context &Ctx, const Expr *E) {
  std::unordered_map<const Expr *, KnownBits> Memo;
  return computeKnownBits(Ctx, E, Memo);
}

const Expr *mba::foldKnownBits(Context &Ctx, const Expr *E) {
  std::unordered_map<const Expr *, KnownBits> Memo;
  computeKnownBits(Ctx, E, Memo);
  uint64_t Mask = Ctx.mask();
  return rewriteBottomUp(Ctx, E, [&](const Expr *N) -> const Expr * {
    if (N->isLeaf())
      return N;
    // Note: rebuilt nodes may be absent from the memo (their operands were
    // folded); analyze on demand.
    KnownBits K = computeKnownBits(Ctx, N, Memo);
    if (K.isConstant(Mask))
      return Ctx.getConst(K.One);
    return N;
  });
}
