//===- analysis/Audit.h - Rewrite audit trail and auditor -------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in audit trail for the simplifier: every rewrite step `e -> e'`
/// claims semantic equality on Z/2^w (the paper's Theorems 1-3 prove this
/// per rule), and the auditor replays the recorded trail cross-checking
/// each claim four ways, from cheapest to most thorough:
///
///  * **structure** — both sides pass the IR verifier (analysis/Verifier.h);
///  * **abstract**  — no abstract domain refutes the equality
///    (analysis/AbstractInterp.h; a refutation is a proof the rewrite
///    changed semantics, found without any solving);
///  * **signature** — both sides agree on all truth-table corners (every
///    variable 0 or all-ones). For linear MBA this is exactly the signature
///    vector of Definition 3, so by Theorem 1 corner agreement there is a
///    complete equivalence check; for other classes it is a strong
///    necessary condition.
///  * **concrete**  — randomized concrete evaluation on full-width inputs.
///
/// On mismatch the auditor emits a minimized reproducer: the witness
/// assignment is greedily shrunk toward 0/1 values while the disagreement
/// persists, then printed together with both expressions and both values.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_ANALYSIS_AUDIT_H
#define MBA_ANALYSIS_AUDIT_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mba {

/// One recorded rewrite: the claim `Before == After` on all inputs,
/// produced by the rule named \p Rule (a static string).
struct RewriteStep {
  const Expr *Before = nullptr;
  const Expr *After = nullptr;
  const char *Rule = "";
};

/// Append-only record of rewrite steps. Hand one to
/// SimplifyOptions::Trail to make the simplifier auditable; nodes are
/// owned by the Context and stay valid for the context's lifetime.
class RewriteTrail {
public:
  /// Records one step; identity rewrites are not recorded.
  void record(const char *Rule, const Expr *Before, const Expr *After) {
    if (Before != After)
      Steps.push_back({Before, After, Rule});
  }

  const std::vector<RewriteStep> &steps() const { return Steps; }
  bool empty() const { return Steps.empty(); }
  size_t size() const { return Steps.size(); }
  void clear() { Steps.clear(); }

private:
  std::vector<RewriteStep> Steps;
};

/// Auditor knobs.
struct AuditOptions {
  unsigned RandomSamples = 64; ///< full-width random assignments per step
  unsigned MaxCornerVars = 10; ///< exhaustive corners up to 2^this rows
  uint64_t Seed = 0xA0D17;     ///< RNG seed (deterministic audits)
  bool CheckStructure = true;
  bool CheckAbstract = true;
  bool CheckSignatures = true;
  bool CheckConcrete = true;
};

/// One confirmed problem with a recorded step.
struct AuditIssue {
  RewriteStep Step;
  std::string Check;      ///< "structure", "abstract", "signature", "concrete"
  std::string Detail;     ///< what disagreed
  std::string Reproducer; ///< minimized witness; empty for structure issues
};

/// Result of replaying a trail.
struct AuditReport {
  std::vector<AuditIssue> Issues;
  unsigned StepsChecked = 0;

  bool ok() const { return Issues.empty(); }
};

/// Replays \p Trail, cross-checking every step. Deterministic in
/// \p Opts.Seed.
AuditReport auditTrail(const Context &Ctx, const RewriteTrail &Trail,
                       const AuditOptions &Opts = AuditOptions());

} // namespace mba

#endif // MBA_ANALYSIS_AUDIT_H
