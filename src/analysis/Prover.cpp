//===- analysis/Prover.cpp - Static equivalence prover --------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Prover.h"

#include "analysis/AbstractInterp.h"
#include "analysis/EGraph.h"
#include "support/QueryLog.h"
#include "support/Telemetry.h"

#include <vector>

using namespace mba;

const char *mba::proveOutcomeName(ProveOutcome O) {
  switch (O) {
  case ProveOutcome::Proved: return "proved";
  case ProveOutcome::Refuted: return "refuted";
  case ProveOutcome::Unknown: return "unknown";
  }
  return "?";
}

namespace {

/// An e-matching environment: pattern-variable dense index -> e-class.
constexpr EClassId Unbound = ~(EClassId)0;
using Env = std::vector<EClassId>;

/// Matches pattern \p P against class \p Cls, extending \p Base. Appends
/// every consistent completed environment to \p Out (bounded by \p Cap).
/// Patterns live in the rule set's pattern context; constants match the
/// pattern value truncated to the e-graph's width.
void matchPattern(const EGraph &G, const Expr *P, EClassId Cls,
                  const Env &Base, std::vector<Env> &Out, size_t Cap) {
  if (Out.size() >= Cap)
    return;
  Cls = G.find(Cls);
  switch (P->kind()) {
  case ExprKind::Var: {
    unsigned Idx = P->varIndex();
    if (Base[Idx] == Unbound) {
      Env E = Base;
      E[Idx] = Cls;
      Out.push_back(std::move(E));
    } else if (G.find(Base[Idx]) == Cls) {
      Out.push_back(Base);
    }
    return;
  }
  case ExprKind::Const: {
    std::optional<uint64_t> C = G.constantOf(Cls);
    if (C && *C == G.context().truncate(P->constValue()))
      Out.push_back(Base);
    return;
  }
  default:
    break;
  }
  for (const ENode &N : G.nodesOf(Cls)) {
    if (N.Kind != P->kind())
      continue;
    if (isUnaryKind(N.Kind)) {
      matchPattern(G, P->operand(), N.Lhs, Base, Out, Cap);
    } else {
      std::vector<Env> Partial;
      matchPattern(G, P->lhs(), N.Lhs, Base, Partial, Cap);
      for (const Env &E : Partial)
        matchPattern(G, P->rhs(), N.Rhs, E, Out, Cap);
    }
    if (Out.size() >= Cap)
      return;
  }
}

/// Instantiates pattern \p P under \p E into the e-graph.
EClassId instantiate(EGraph &G, const Expr *P, const Env &E) {
  switch (P->kind()) {
  case ExprKind::Var:
    assert(E[P->varIndex()] != Unbound && "rhs variable unbound by lhs");
    return E[P->varIndex()];
  case ExprKind::Const:
    return G.addConst(P->constValue()); // addConst truncates to the width
  case ExprKind::Not:
  case ExprKind::Neg:
    return G.addNode(P->kind(), instantiate(G, P->operand(), E));
  default:
    return G.addNode(P->kind(), instantiate(G, P->lhs(), E),
                     instantiate(G, P->rhs(), E));
  }
}

/// One pending rewrite: class \p Where equals \p Rhs instantiated under Env.
struct PendingMerge {
  EClassId Where;
  const Expr *Rhs;
  Env Binding;
};

/// Runs one saturation round: e-matches every certified rule (both
/// directions for bidirectional rules) against every class, then applies
/// all merges and rebuilds. Returns true when the e-graph changed.
bool saturateRound(EGraph &G, const RuleSet &Rules, const ProveBudget &Budget,
                   ProveStats &Stats) {
  // Cached count, not patternContext().numVars(): the rule set is shared
  // across worker threads, and the pattern context's accessors are pinned
  // to the thread that first built certifiedRules().
  unsigned NumPatVars = Rules.numPatternVars();
  std::vector<PendingMerge> Pending;
  std::vector<EClassId> Classes = G.canonicalClasses();
  Env Fresh(NumPatVars, Unbound);
  auto MatchRule = [&](const Expr *Lhs, const Expr *Rhs) {
    // Leaf-pattern LHS would merge every class into one; the table has no
    // such rule, but guard custom sets.
    if (Lhs->isLeaf())
      return;
    size_t Budgeted = 0;
    for (EClassId Cls : Classes) {
      std::vector<Env> Matches;
      matchPattern(G, Lhs, Cls, Fresh, Matches,
                   Budget.MaxMatchesPerRule - Budgeted);
      for (Env &E : Matches)
        Pending.push_back({Cls, Rhs, std::move(E)});
      Budgeted += Matches.size();
      if (Budgeted >= Budget.MaxMatchesPerRule)
        break;
    }
  };
  // Per-rule attribution (flight recorder + rule-attribution registry):
  // e-matching dominates saturation cost, so time each rule's match pass
  // and count the environments it produced. Only rules that matched are
  // recorded — unmatched rules' time stays in the egraph-saturate stage
  // aggregate. Gated so the undisturbed pipeline pays one relaxed load.
  bool Attribute = telemetry::metricsEnabled() || querylog::active() != nullptr;
  for (const EqualityRule &R : Rules.rules()) {
    if (R.Certified == CertMethod::Uncertified)
      continue; // only certified rules may touch the e-graph
    size_t PendingBefore = Pending.size();
    uint64_t MatchStart = Attribute ? telemetry::nowNs() : 0;
    MatchRule(R.Lhs, R.Rhs);
    if (R.Bidirectional)
      MatchRule(R.Rhs, R.Lhs);
    if (Attribute) {
      size_t Fires = Pending.size() - PendingBefore;
      if (Fires)
        querylog::noteRule("egraph." + R.Name, Fires,
                           telemetry::nowNs() - MatchStart, 0, 0);
    }
  }
  bool Changed = false;
  for (const PendingMerge &P : Pending) {
    if (G.numNodes() >= Budget.MaxENodes)
      break;
    EClassId RhsCls = instantiate(G, P.Rhs, P.Binding);
    Changed |= G.merge(P.Where, RhsCls);
    ++Stats.Matches;
  }
  G.rebuild();
  return Changed;
}

void fillStats(const EGraph &G, ProveStats &Stats) {
  Stats.ENodes = G.numNodes();
  Stats.EClasses = G.numClasses();
  Stats.Merges = G.numMerges();
}

} // namespace

Prover::Prover(Context &Ctx, const RuleSet *Rules)
    : Ctx(Ctx), Rules(Rules ? Rules : &certifiedRules()) {}

ProveResult Prover::prove(const Expr *A, const Expr *B,
                          const ProveBudget &Budget) {
  MBA_TRACE_SPAN("prover.prove");
  static telemetry::Counter &Proves = telemetry::counter("prover.queries");
  Proves.add();
  ProveResult Result;
  if (A == B) { // hash-consing: pointer equality is structural equality
    Result.Outcome = ProveOutcome::Proved;
    Result.Detail = "syntactic";
    return Result;
  }
  if (std::optional<Refutation> R = refuteEquivalence(Ctx, A, B)) {
    Result.Outcome = ProveOutcome::Refuted;
    Result.Detail = R->Domain + ": " + R->Detail;
    return Result;
  }
  EGraph G(Ctx);
  EClassId CA = G.addExpr(A), CB = G.addExpr(B);
  G.rebuild();
  if (G.sameClass(CA, CB)) {
    Result.Outcome = ProveOutcome::Proved;
    Result.Detail = "congruence";
    fillStats(G, Result.Stats);
    return Result;
  }
  for (unsigned Iter = 0; Iter != Budget.MaxIterations; ++Iter) {
    bool Changed = saturateRound(G, *Rules, Budget, Result.Stats);
    ++Result.Stats.Iterations;
    if (G.sameClass(CA, CB)) {
      Result.Outcome = ProveOutcome::Proved;
      Result.Detail =
          "saturation, " + std::to_string(Result.Stats.Iterations) + " round" +
          (Result.Stats.Iterations == 1 ? "" : "s");
      fillStats(G, Result.Stats);
      return Result;
    }
    if (!Changed || G.numNodes() >= Budget.MaxENodes)
      break; // saturated or out of budget
  }
  Result.Outcome = ProveOutcome::Unknown;
  Result.Detail = "budget exhausted";
  fillStats(G, Result.Stats);
  return Result;
}

const Expr *Prover::saturateAndExtract(const Expr *E,
                                       const ProveBudget &Budget) {
  MBA_TRACE_SPAN("prover.saturate");
  EGraph G(Ctx);
  EClassId Root = G.addExpr(E);
  G.rebuild();
  ProveStats Stats;
  for (unsigned Iter = 0; Iter != Budget.MaxIterations; ++Iter)
    if (!saturateRound(G, *Rules, Budget, Stats) ||
        G.numNodes() >= Budget.MaxENodes)
      break;
  const Expr *Best = G.extract(Root);
  return Best ? Best : E;
}

ProveResult mba::proveEquivalence(Context &Ctx, const Expr *A, const Expr *B,
                                  const ProveBudget &Budget) {
  return Prover(Ctx).prove(A, B, Budget);
}
