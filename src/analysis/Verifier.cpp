//===- analysis/Verifier.cpp - IR well-formedness verifier ----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include <unordered_map>
#include <vector>

using namespace mba;

namespace {

enum class Color : uint8_t { Gray, Black };

VerifyResult fail(const Expr *Node, std::string Message) {
  VerifyResult R;
  R.BadNode = Node;
  R.Message = std::move(Message);
  return R;
}

/// Node-local checks: kind validity, operand arity, payload invariants, and
/// structural uniqueness against the context's intern table.
VerifyResult verifyNode(const Context &Ctx, const Expr *N) {
  if (!N)
    return fail(nullptr, "null expression");

  ExprKind K = N->kind();
  if ((uint8_t)K > (uint8_t)ExprKind::Xor)
    return fail(N, "invalid kind tag " + std::to_string((unsigned)K));

  const Expr *Raw0 = N->rawOperand(0);
  const Expr *Raw1 = N->rawOperand(1);
  if (N->isLeaf()) {
    if (Raw0 || Raw1)
      return fail(N, "leaf node with operand pointers");
  } else if (isUnaryKind(K)) {
    if (!Raw0)
      return fail(N, "unary node with null operand");
    if (Raw1)
      return fail(N, "unary node with a second operand");
  } else {
    if (!Raw0 || !Raw1)
      return fail(N, "binary node with a null operand");
  }

  uint64_t Aux = 0;
  switch (K) {
  case ExprKind::Const:
    if (N->constValue() != (N->constValue() & Ctx.mask()))
      return fail(N, "constant " + std::to_string(N->constValue()) +
                         " not reduced modulo the context mask");
    Aux = N->constValue();
    break;
  case ExprKind::Var: {
    if (!N->varName() || N->varName()[0] == '\0')
      return fail(N, "variable with empty name");
    if (N->varIndex() >= Ctx.numVars())
      return fail(N, "variable index " + std::to_string(N->varIndex()) +
                         " out of range (context has " +
                         std::to_string(Ctx.numVars()) + " variables)");
    if (Ctx.getVarByIndex(N->varIndex()) != N)
      return fail(N, std::string("variable '") + N->varName() +
                         "' disagrees with the context's variable table");
    Aux = N->varIndex();
    break;
  }
  default:
    break;
  }

  // Structural uniqueness: the node must be the canonical representative of
  // its own key. A node built outside the context (or a stale duplicate)
  // either resolves to a different pointer or to nothing at all.
  const Expr *Canonical = Ctx.findInterned(K, N->isLeaf() ? nullptr : Raw0,
                                           isBinaryKind(K) ? Raw1 : nullptr,
                                           Aux);
  if (Canonical != N)
    return fail(N, Canonical
                       ? "node is a duplicate of an interned node (hash-"
                         "consing uniqueness violated)"
                       : "node is not interned in this context");
  return VerifyResult();
}

/// Iterative DFS from \p Root with tri-color marking shared across roots:
/// Gray nodes are on the current path, so reaching one again is a cycle.
/// Hash-consed construction makes cycles impossible to build through the
/// public API, but the verifier's job is to not trust that.
VerifyResult verifyFrom(const Context &Ctx, const Expr *Root,
                        std::unordered_map<const Expr *, Color> &Marks) {
  struct Frame {
    const Expr *Node;
    unsigned NextOperand;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Root, 0});

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    const Expr *N = F.Node;
    if (F.NextOperand == 0) {
      auto It = Marks.find(N);
      if (It != Marks.end()) {
        if (It->second == Color::Gray)
          return fail(N, "cycle detected (expression graph is not a DAG)");
        Stack.pop_back(); // already fully verified
        continue;
      }
      VerifyResult R = verifyNode(Ctx, N);
      if (!R.ok())
        return R;
      Marks.emplace(N, Color::Gray);
    }
    if (F.NextOperand < N->numOperands()) {
      const Expr *Child = N->getOperand(F.NextOperand++);
      Stack.push_back({Child, 0});
    } else {
      Marks[N] = Color::Black;
      Stack.pop_back();
    }
  }
  return VerifyResult();
}

} // namespace

VerifyResult mba::verifyExpr(const Context &Ctx, const Expr *E) {
  if (!E)
    return fail(nullptr, "null expression");
  std::unordered_map<const Expr *, Color> Marks;
  return verifyFrom(Ctx, E, Marks);
}

VerifyResult mba::verifyContext(const Context &Ctx) {
  // Every owned node roots a verified walk; shared marks keep the whole
  // sweep linear in the number of owned nodes.
  VerifyResult R;
  size_t Seen = 0;
  std::unordered_map<const Expr *, Color> Marks;
  Ctx.forEachOwnedNode([&](const Expr *N) {
    ++Seen;
    if (!R.ok())
      return;
    VerifyResult WalkR = verifyFrom(Ctx, N, Marks);
    if (!WalkR.ok())
      R = std::move(WalkR);
  });
  if (!R.ok())
    return R;
  if (Seen != Ctx.numNodes())
    return fail(nullptr, "node-count bookkeeping mismatch: context reports " +
                             std::to_string(Ctx.numNodes()) + " nodes, " +
                             std::to_string(Seen) + " are owned");
  return R;
}
