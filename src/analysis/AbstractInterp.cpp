//===- analysis/AbstractInterp.cpp - Abstract interpretation --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterp.h"

#include <algorithm>
#include <bit>

using namespace mba;

//===----------------------------------------------------------------------===//
// KnownBitsDomain — the pre-framework transfer functions, verbatim.
//===----------------------------------------------------------------------===//

namespace {

/// Known bits of A + B + CarryIn (carry-in fully known). Bits of the sum
/// are determined from the least-significant end as long as both operands
/// are determined: a carry out of a fully known prefix is itself known.
KnownBits addKnown(KnownBits A, KnownBits B, uint64_t CarryIn,
                   uint64_t Mask) {
  unsigned TrailA = (unsigned)std::countr_one(A.knownMask());
  unsigned TrailB = (unsigned)std::countr_one(B.knownMask());
  unsigned Known = std::min(TrailA, TrailB);
  if (Known == 0)
    return KnownBits();
  uint64_t Window = lowBitsMask(Known);
  uint64_t Sum = (A.One & Window) + (B.One & Window) + CarryIn;
  KnownBits R;
  R.One = Sum & Window & Mask;
  R.Zero = ~Sum & Window & Mask;
  return R;
}

} // namespace

KnownBits KnownBitsDomain::constant(uint64_t C) const {
  KnownBits K;
  K.One = C & Mask;
  K.Zero = ~C & Mask;
  return K;
}

KnownBits KnownBitsDomain::unary(ExprKind K, const KnownBits &A) const {
  KnownBits R;
  switch (K) {
  case ExprKind::Not:
    R.Zero = A.One;
    R.One = A.Zero;
    break;
  case ExprKind::Neg: {
    // -a == ~a + 1.
    KnownBits NotA{A.One, A.Zero};
    KnownBits Zero;
    Zero.Zero = Mask; // the constant 0
    R = addKnown(Zero, NotA, 1, Mask);
    break;
  }
  default:
    assert(false && "not a unary kind");
  }
  assert((R.Zero & R.One) == 0 && "contradictory known bits");
  return R;
}

KnownBits KnownBitsDomain::binary(ExprKind K, const KnownBits &A,
                                  const KnownBits &B,
                                  bool /*SameOperand*/) const {
  // SameOperand is deliberately unused: this domain is the historical
  // known-bits analysis, preserved bit-for-bit as the regression baseline.
  // The parity and interval domains are the ones that exploit sharing.
  KnownBits R;
  switch (K) {
  case ExprKind::And:
    R.One = A.One & B.One;
    R.Zero = (A.Zero | B.Zero) & Mask;
    break;
  case ExprKind::Or:
    R.One = A.One | B.One;
    R.Zero = A.Zero & B.Zero;
    break;
  case ExprKind::Xor:
    R.One = (A.One & B.Zero) | (A.Zero & B.One);
    R.Zero = (A.Zero & B.Zero) | (A.One & B.One);
    break;
  case ExprKind::Add:
    R = addKnown(A, B, 0, Mask);
    break;
  case ExprKind::Sub: {
    // a - b == a + ~b + 1.
    KnownBits NotB{B.One, B.Zero};
    R = addKnown(A, NotB, 1, Mask);
    break;
  }
  case ExprKind::Mul: {
    // The low k bits of a product depend only on the low k bits of the
    // factors; when both are known on a low window, so is the product on
    // that window. Trailing zeros additionally accumulate.
    unsigned TrailA = (unsigned)std::countr_one(A.knownMask());
    unsigned TrailB = (unsigned)std::countr_one(B.knownMask());
    unsigned Known = std::min(TrailA, TrailB);
    if (Known) {
      uint64_t Window = lowBitsMask(Known);
      uint64_t Prod = (A.One & Window) * (B.One & Window);
      R.One = Prod & Window & Mask;
      R.Zero = ~Prod & Window & Mask;
    }
    // Factor trailing zeros: tz(a*b) >= tz(a) + tz(b).
    unsigned TzA = (unsigned)std::countr_one(A.Zero);
    unsigned TzB = (unsigned)std::countr_one(B.Zero);
    unsigned Tz = std::min(64u, TzA + TzB);
    R.Zero |= lowBitsMask(Tz) & Mask & ~R.One;
    break;
  }
  default:
    assert(false && "not a binary kind");
  }
  assert((R.Zero & R.One) == 0 && "contradictory known bits");
  return R;
}

//===----------------------------------------------------------------------===//
// ParityDomain
//===----------------------------------------------------------------------===//

namespace {

/// Provable trailing-zero count of a value known modulo 2^KnownLow.
unsigned parityTrailingZeros(const Parity &P) {
  if (P.KnownLow == 0)
    return 0;
  if (P.Residue == 0)
    return P.KnownLow;
  return (unsigned)std::countr_zero(P.Residue);
}

} // namespace

Parity ParityDomain::unary(ExprKind K, const Parity &A) const {
  switch (K) {
  case ExprKind::Not:
    return make(A.KnownLow, ~A.Residue);
  case ExprKind::Neg:
    return make(A.KnownLow, 0 - A.Residue);
  default:
    assert(false && "not a unary kind");
    return top();
  }
}

Parity ParityDomain::binary(ExprKind K, const Parity &A, const Parity &B,
                            bool SameOperand) const {
  unsigned M = std::min(A.KnownLow, B.KnownLow);
  switch (K) {
  case ExprKind::Add:
    if (SameOperand)
      // e + e == 2e: known mod 2^(k+1) — in particular even when e is top.
      return make(A.KnownLow + 1, A.Residue << 1);
    return make(M, A.Residue + B.Residue);
  case ExprKind::Sub:
    if (SameOperand)
      return make(Width, 0); // e - e == 0 exactly
    return make(M, A.Residue - B.Residue);
  case ExprKind::Mul: {
    // Best of several sound facts; keep the one with the widest window.
    Parity R = make(M, A.Residue * B.Residue);
    // tz(a*b) >= tz(a) + tz(b).
    unsigned Tz = std::min((unsigned)64,
                           parityTrailingZeros(A) + parityTrailingZeros(B));
    if (Tz > R.KnownLow)
      R = make(Tz, 0);
    // Multiplication by a full constant c: c*v ≡ c*r (mod 2^(k + tz(c))).
    auto ByConst = [&](const Parity &C, const Parity &V) {
      if (C.KnownLow < Width || V.KnownLow == 0 || C.Residue == 0)
        return;
      unsigned W = V.KnownLow + (unsigned)std::countr_zero(C.Residue);
      if (W > R.KnownLow)
        R = make(W, C.Residue * V.Residue);
    };
    ByConst(A, B);
    ByConst(B, A);
    if (SameOperand && A.KnownLow >= 1) {
      // e ≡ r (mod 2^k), k >= 1  ==>  e*e ≡ r*r (mod 2^(k+1)).
      unsigned W = A.KnownLow + 1;
      if (W > R.KnownLow)
        R = make(W, A.Residue * A.Residue);
    }
    return R;
  }
  case ExprKind::And: {
    if (SameOperand)
      return A;
    Parity R = make(M, A.Residue & B.Residue);
    // A full constant whose set bits all sit inside the other operand's
    // known window masks everything unknown to zero: the result is the
    // full constant c & r.
    auto Absorb = [&](const Parity &C, const Parity &V) {
      if (C.KnownLow < Width || V.KnownLow >= Width)
        return;
      if ((C.Residue & ~lowBitsMask(V.KnownLow)) == 0)
        R = make(Width, C.Residue & V.Residue);
    };
    Absorb(A, B);
    Absorb(B, A);
    return R;
  }
  case ExprKind::Or: {
    if (SameOperand)
      return A;
    Parity R = make(M, A.Residue | B.Residue);
    // Dual absorption: a full constant with every bit above the other
    // operand's window set forces those bits to one.
    uint64_t WidthMask = lowBitsMask(Width);
    auto Absorb = [&](const Parity &C, const Parity &V) {
      if (C.KnownLow < Width || V.KnownLow >= Width)
        return;
      if ((C.Residue & ~lowBitsMask(V.KnownLow)) ==
          (WidthMask & ~lowBitsMask(V.KnownLow)))
        R = make(Width, C.Residue | V.Residue);
    };
    Absorb(A, B);
    Absorb(B, A);
    return R;
  }
  case ExprKind::Xor:
    if (SameOperand)
      return make(Width, 0); // e ^ e == 0 exactly
    return make(M, A.Residue ^ B.Residue);
  default:
    assert(false && "not a binary kind");
    return top();
  }
}

//===----------------------------------------------------------------------===//
// IntervalDomain
//===----------------------------------------------------------------------===//

namespace {

/// The common high-order prefix of [Lo, Hi] is fixed on the whole range:
/// every value in the interval agrees with Lo on the bits above the highest
/// bit where Lo and Hi differ. Converts that prefix into known-bits form.
KnownBits intervalPrefixBits(const Interval &I, uint64_t Mask) {
  uint64_t Diff = I.Lo ^ I.Hi;
  uint64_t KnownMask =
      Diff == 0 ? Mask : Mask & ~lowBitsMask((unsigned)std::bit_width(Diff));
  KnownBits K;
  K.One = I.Lo & KnownMask;
  K.Zero = ~I.Lo & KnownMask & Mask;
  return K;
}

/// Tightest interval containing every value consistent with known bits.
Interval intervalFromBits(const KnownBits &K, uint64_t Mask) {
  return Interval{K.One, Mask & ~K.Zero};
}

} // namespace

Interval IntervalDomain::unary(ExprKind K, const Interval &A) const {
  switch (K) {
  case ExprKind::Not:
    // ~v == mask - v: order-reversing and exact.
    return Interval{Mask - A.Hi, Mask - A.Lo};
  case ExprKind::Neg:
    if (A.Hi == 0)
      return Interval{0, 0};
    if (A.Lo > 0)
      // All values positive: -v == 2^w - v, monotone decreasing, no wrap.
      return Interval{(0 - A.Hi) & Mask, (0 - A.Lo) & Mask};
    return top(); // range straddles 0: image wraps around
  default:
    assert(false && "not a unary kind");
    return top();
  }
}

Interval IntervalDomain::binary(ExprKind K, const Interval &A,
                                const Interval &B, bool SameOperand) const {
  using U128 = unsigned __int128;
  switch (K) {
  case ExprKind::Add:
    if (SameOperand) {
      if ((U128)A.Hi + A.Hi <= Mask)
        return Interval{A.Lo * 2, A.Hi * 2};
      return top();
    }
    if ((U128)A.Hi + B.Hi <= Mask)
      return Interval{A.Lo + B.Lo, A.Hi + B.Hi};
    return top(); // possible wraparound
  case ExprKind::Sub:
    if (SameOperand)
      return Interval{0, 0}; // e - e == 0 exactly
    if (A.Lo >= B.Hi)
      return Interval{A.Lo - B.Hi, A.Hi - B.Lo};
    return top(); // possible borrow below zero
  case ExprKind::Mul: {
    if ((U128)A.Hi * B.Hi <= Mask)
      return Interval{A.Lo * B.Lo, A.Hi * B.Hi};
    // Constant multiplier c = m·2^t: v*c ≡ (v·m mod 2^(w-t))·2^t, so the
    // product stays a multiple of 2^t even after wraparound — the top of
    // the range drops by the t trailing-zero bits (e.g. x*4 at width 8
    // lies in [0, 252] although the product itself may wrap).
    unsigned TrailingZeros = 0;
    if (A.Lo == A.Hi && A.Lo != 0)
      TrailingZeros = (unsigned)std::countr_zero(A.Lo);
    else if (B.Lo == B.Hi && B.Lo != 0)
      TrailingZeros = (unsigned)std::countr_zero(B.Lo);
    if (TrailingZeros > 0)
      return Interval{0, Mask & ~lowBitsMask(TrailingZeros)};
    return top();
  }
  case ExprKind::And: {
    if (SameOperand)
      return A;
    KnownBits KB = KnownBitsDomain(Mask).binary(
        ExprKind::And, intervalPrefixBits(A, Mask),
        intervalPrefixBits(B, Mask), false);
    Interval R = intervalFromBits(KB, Mask);
    R.Hi = std::min(R.Hi, std::min(A.Hi, B.Hi)); // v & w <= min(v, w)
    return R;
  }
  case ExprKind::Or: {
    if (SameOperand)
      return A;
    KnownBits KB = KnownBitsDomain(Mask).binary(
        ExprKind::Or, intervalPrefixBits(A, Mask),
        intervalPrefixBits(B, Mask), false);
    Interval R = intervalFromBits(KB, Mask);
    R.Lo = std::max(R.Lo, std::max(A.Lo, B.Lo)); // v | w >= max(v, w)
    // v | w < 2^k when both operands are < 2^k.
    R.Hi = std::min(R.Hi, lowBitsMask((unsigned)std::bit_width(A.Hi | B.Hi)));
    return R;
  }
  case ExprKind::Xor: {
    if (SameOperand)
      return Interval{0, 0}; // e ^ e == 0 exactly
    KnownBits KB = KnownBitsDomain(Mask).binary(
        ExprKind::Xor, intervalPrefixBits(A, Mask),
        intervalPrefixBits(B, Mask), false);
    Interval R = intervalFromBits(KB, Mask);
    R.Hi = std::min(R.Hi, lowBitsMask((unsigned)std::bit_width(A.Hi | B.Hi)));
    return R;
  }
  default:
    assert(false && "not a binary kind");
    return top();
  }
}

//===----------------------------------------------------------------------===//
// Convenience entry points
//===----------------------------------------------------------------------===//

Parity mba::computeParity(const Context &Ctx, const Expr *E) {
  ParityDomain D(Ctx.width());
  std::unordered_map<const Expr *, Parity> Memo;
  return computeAbstract(D, E, Memo);
}

Interval mba::computeInterval(const Context &Ctx, const Expr *E) {
  IntervalDomain D(Ctx.mask());
  std::unordered_map<const Expr *, Interval> Memo;
  return computeAbstract(D, E, Memo);
}

const Expr *mba::foldAbstract(Context &Ctx, const Expr *E) {
  KnownBitsDomain KBD(Ctx.mask());
  ParityDomain PD(Ctx.width());
  IntervalDomain ID(Ctx.mask());
  std::unordered_map<const Expr *, KnownBits> KBMemo;
  std::unordered_map<const Expr *, Parity> PMemo;
  std::unordered_map<const Expr *, Interval> IMemo;
  return rewriteBottomUp(Ctx, E, [&](const Expr *N) -> const Expr * {
    if (N->isLeaf())
      return N;
    // Rebuilt nodes may be absent from the memos (their operands were
    // folded); computeAbstract fills gaps on demand.
    if (auto C = KBD.asConstant(computeAbstract(KBD, N, KBMemo)))
      return Ctx.getConst(*C);
    if (auto C = PD.asConstant(computeAbstract(PD, N, PMemo)))
      return Ctx.getConst(*C);
    if (auto C = ID.asConstant(computeAbstract(ID, N, IMemo)))
      return Ctx.getConst(*C);
    return N;
  });
}

std::optional<Refutation>
mba::refuteEquivalence(const Context &Ctx, const Expr *A, const Expr *B) {
  {
    KnownBitsDomain D(Ctx.mask());
    std::unordered_map<const Expr *, KnownBits> Memo;
    KnownBits VA = computeAbstract(D, A, Memo);
    KnownBits VB = computeAbstract(D, B, Memo);
    if (D.disjoint(VA, VB)) {
      uint64_t Conflict = (VA.One & VB.Zero) | (VA.Zero & VB.One);
      return Refutation{"known-bits",
                        "bit " +
                            std::to_string(std::countr_zero(Conflict)) +
                            " is provably 1 on one side and 0 on the other"};
    }
  }
  {
    ParityDomain D(Ctx.width());
    std::unordered_map<const Expr *, Parity> Memo;
    Parity VA = computeAbstract(D, A, Memo);
    Parity VB = computeAbstract(D, B, Memo);
    if (D.disjoint(VA, VB)) {
      unsigned M = std::min(VA.KnownLow, VB.KnownLow);
      return Refutation{
          "parity", "lhs ≡ " + std::to_string(VA.Residue & lowBitsMask(M)) +
                        ", rhs ≡ " +
                        std::to_string(VB.Residue & lowBitsMask(M)) +
                        " (mod 2^" + std::to_string(M) + ")"};
    }
  }
  {
    IntervalDomain D(Ctx.mask());
    std::unordered_map<const Expr *, Interval> Memo;
    Interval VA = computeAbstract(D, A, Memo);
    Interval VB = computeAbstract(D, B, Memo);
    if (D.disjoint(VA, VB))
      return Refutation{"interval",
                        "lhs in [" + std::to_string(VA.Lo) + ", " +
                            std::to_string(VA.Hi) + "], rhs in [" +
                            std::to_string(VB.Lo) + ", " +
                            std::to_string(VB.Hi) + "]"};
  }
  return std::nullopt;
}
