//===- analysis/Rules.cpp - Certified declarative rewrite rules -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Rules.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

using namespace mba;

const char *mba::certMethodName(CertMethod M) {
  switch (M) {
  case CertMethod::Uncertified: return "uncertified";
  case CertMethod::Polynomial: return "polynomial";
  case CertMethod::LinearCorner: return "linear-corner";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// RuleSet
//===----------------------------------------------------------------------===//

RuleSet::RuleSet() : PatCtx(std::make_unique<Context>(64)) {}

namespace {

/// Folds operator nodes whose operands are all constants (`-1` parses as
/// Neg(1); matching wants the all-ones Const node). Unlike foldAbstract()
/// this never folds across pattern variables — `a&0` must stay a pattern,
/// not become the constant it denotes for every `a`.
const Expr *foldLiterals(Context &Ctx, const Expr *E) {
  return rewriteBottomUp(Ctx, E, [&](const Expr *N) -> const Expr * {
    if (N->isLeaf())
      return N;
    for (unsigned I = 0; I != N->numOperands(); ++I)
      if (!N->getOperand(I)->isConst())
        return N;
    return Ctx.getConst(evaluate(Ctx, N, std::span<const uint64_t>()));
  });
}

} // namespace

void RuleSet::add(std::string Name, std::string_view Lhs, std::string_view Rhs,
                  bool Bidirectional) {
  EqualityRule R;
  R.Name = std::move(Name);
  R.LhsText = Lhs;
  R.RhsText = Rhs;
  R.Lhs = foldLiterals(*PatCtx, parseOrDie(*PatCtx, Lhs));
  R.Rhs = foldLiterals(*PatCtx, parseOrDie(*PatCtx, Rhs));
  R.Bidirectional = Bidirectional;
  // Rewrites may not invent variables: every RHS variable must be bound by
  // the LHS match (and vice versa for bidirectional rules).
  std::vector<const Expr *> LV = collectVariables(R.Lhs);
  std::vector<const Expr *> RV = collectVariables(R.Rhs);
  for (const Expr *V : RV)
    if (std::find(LV.begin(), LV.end(), V) == LV.end()) {
      std::fprintf(stderr, "rule '%s': rhs variable %s unbound by lhs\n",
                   R.Name.c_str(), V->varName());
      std::abort();
    }
  if (Bidirectional)
    for (const Expr *V : LV)
      if (std::find(RV.begin(), RV.end(), V) == RV.end()) {
        std::fprintf(stderr,
                     "rule '%s': bidirectional but lhs variable %s unbound "
                     "by rhs\n",
                     R.Name.c_str(), V->varName());
        std::abort();
      }
  Rules.push_back(std::move(R));
  NumPatVars = PatCtx->numVars();
}

size_t RuleSet::pruneUncertified() {
  size_t Before = Rules.size();
  std::erase_if(Rules, [](const EqualityRule &R) {
    return R.Certified == CertMethod::Uncertified;
  });
  return Before - Rules.size();
}

//===----------------------------------------------------------------------===//
// The shipped rule table
//===----------------------------------------------------------------------===//

void mba::addDefaultRules(RuleSet &RS) {
  // --- Ring axioms of Z/2^w (certified polynomially) ---
  RS.add("add-comm", "a+b", "b+a");
  RS.add("add-assoc", "(a+b)+c", "a+(b+c)", /*Bidirectional=*/true);
  RS.add("mul-comm", "a*b", "b*a");
  RS.add("mul-assoc", "(a*b)*c", "a*(b*c)", true);
  RS.add("mul-distrib", "a*(b+c)", "a*b+a*c", true);
  RS.add("add-zero", "a+0", "a");
  RS.add("mul-one", "a*1", "a");
  RS.add("mul-zero", "a*0", "0");
  RS.add("sub-def", "a-b", "a+(-b)", true);
  RS.add("neg-neg", "-(-a)", "a");
  RS.add("add-self", "a+a", "2*a", true);
  RS.add("sub-self", "a-a", "0");

  // --- Bitwise lattice laws (certified by corner sums) ---
  RS.add("and-comm", "a&b", "b&a");
  RS.add("or-comm", "a|b", "b|a");
  RS.add("xor-comm", "a^b", "b^a");
  RS.add("and-assoc", "(a&b)&c", "a&(b&c)", true);
  RS.add("or-assoc", "(a|b)|c", "a|(b|c)", true);
  RS.add("xor-assoc", "(a^b)^c", "a^(b^c)", true);
  RS.add("and-self", "a&a", "a");
  RS.add("or-self", "a|a", "a");
  RS.add("xor-self", "a^a", "0");
  RS.add("and-zero", "a&0", "0");
  RS.add("or-zero", "a|0", "a");
  RS.add("xor-zero", "a^0", "a");
  RS.add("and-ones", "a&-1", "a");
  RS.add("or-ones", "a|-1", "-1");
  RS.add("xor-ones", "a^-1", "~a", true);
  RS.add("not-not", "~~a", "a");
  RS.add("demorgan-and", "~(a&b)", "~a|~b", true);
  RS.add("demorgan-or", "~(a|b)", "~a&~b", true);
  RS.add("absorb-and", "a&(a|b)", "a");
  RS.add("absorb-or", "a|(a&b)", "a");
  RS.add("and-or-distrib", "a&(b|c)", "(a&b)|(a&c)", true);

  // --- Bitwise/arithmetic bridges (Section 2, Table 5, Hacker's Delight;
  //     certified by corner sums — these carry the MBA reasoning) ---
  RS.add("not-def", "~a", "-a-1", true);
  RS.add("neg-def", "-a", "~a+1", true);
  RS.add("add-to-or-and", "a+b", "(a|b)+(a&b)", true);
  RS.add("add-to-xor-and", "a+b", "(a^b)+2*(a&b)", true);
  RS.add("add-to-or-xor", "a+b", "2*(a|b)-(a^b)", true);
  RS.add("or-to-arith", "a|b", "a+b-(a&b)", true);
  RS.add("xor-to-or-and", "a^b", "(a|b)-(a&b)", true);
  RS.add("andnot-to-arith", "a&~b", "a-(a&b)", true);

  // --- Direct Table 5 / seed-identity contractions (one-directional:
  //     complex form to simple form, so raw corpus seeds prove fast) ---
  RS.add("t5-or", "(a&~b)+b", "a|b");
  RS.add("t5-add-1", "(a|b)+(~a|b)-~a", "a+b");
  RS.add("t5-add-2", "(a|b)+b-(~a&b)", "a+b");
  RS.add("t5-add-3", "(a^b)+2*b-2*(~a&b)", "a+b");
  RS.add("t5-add-4", "b+(a&~b)+(a&b)", "a+b");
  RS.add("t5-add-5", "2*(a|b)-(~a&b)-(a&~b)", "a+b");
  RS.add("t5-sub-1", "(a^b)+2*(a|~b)+2", "a-b");
  RS.add("t5-sub-2", "(a^b)-2*(~a&b)", "a-b");
  RS.add("t5-sub-3", "(a&~b)-(~a&b)", "a-b");
  RS.add("t5-sub-4", "2*(a&~b)-(a^b)", "a-b");
}

//===----------------------------------------------------------------------===//
// Prover 1: formal integer polynomials over atoms
//===----------------------------------------------------------------------===//
//
// Atoms are pattern variables and opaque bitwise subterms (interned Expr
// pointers, so structurally equal subterms are one atom). `~e` is rewritten
// through the all-width ring identity ~e = -e - 1, which keeps pure
// negation algebra inside the polynomial fragment. A zero difference
// polynomial over ℤ holds in every commutative ring, hence in every Z/2^w.

namespace {

using Coeff = __int128;

/// A monomial: sorted atom pointers, with repetition for powers.
using Monomial = std::vector<const Expr *>;

/// Polynomial: monomial -> integer coefficient. Empty monomial = constant.
using Poly = std::map<Monomial, Coeff>;

constexpr Coeff CoeffLimit = (Coeff)1 << 100;
constexpr size_t MonomialLimit = 512;

void polyAdd(Poly &P, const Monomial &M, Coeff C) {
  Coeff &Slot = P[M];
  Slot += C;
  if (Slot == 0)
    P.erase(M);
}

/// Returns false on blow-up (the prover gives up, it never lies).
bool polyCombine(Poly &Out, const Poly &A, const Poly &B, Coeff ScaleB) {
  Out = A;
  for (const auto &[M, C] : B)
    polyAdd(Out, M, C * ScaleB);
  for (const auto &[M, C] : Out)
    if (C >= CoeffLimit || C <= -CoeffLimit)
      return false;
  return Out.size() <= MonomialLimit;
}

bool polyMul(Poly &Out, const Poly &A, const Poly &B) {
  Out.clear();
  for (const auto &[MA, CA] : A)
    for (const auto &[MB, CB] : B) {
      Monomial M = MA;
      M.insert(M.end(), MB.begin(), MB.end());
      std::sort(M.begin(), M.end());
      polyAdd(Out, M, CA * CB);
    }
  for (const auto &[M, C] : Out)
    if (C >= CoeffLimit || C <= -CoeffLimit)
      return false;
  return Out.size() <= MonomialLimit;
}

/// Builds the formal polynomial of \p E. Returns false on blow-up.
bool buildPoly(const Context &Ctx, const Expr *E, Poly &Out) {
  switch (E->kind()) {
  case ExprKind::Const:
    Out.clear();
    if (uint64_t V = E->constValue(); V != 0)
      Out[{}] = (Coeff)Ctx.toSigned(V);
    return true;
  case ExprKind::Var:
    Out.clear();
    Out[{E}] = 1;
    return true;
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Xor:
    // Opaque bitwise atom (hash-consing makes equal subterms one pointer).
    Out.clear();
    Out[{E}] = 1;
    return true;
  case ExprKind::Not: {
    // ~e = -e - 1 in Z/2^w for every w.
    Poly Sub, MinusOne;
    if (!buildPoly(Ctx, E->operand(), Sub))
      return false;
    MinusOne[{}] = -1;
    return polyCombine(Out, MinusOne, Sub, -1);
  }
  case ExprKind::Neg: {
    Poly Sub, Zero;
    if (!buildPoly(Ctx, E->operand(), Sub))
      return false;
    return polyCombine(Out, Zero, Sub, -1);
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    Poly L, R;
    if (!buildPoly(Ctx, E->lhs(), L) || !buildPoly(Ctx, E->rhs(), R))
      return false;
    return polyCombine(Out, L, R, E->kind() == ExprKind::Add ? 1 : -1);
  }
  case ExprKind::Mul: {
    Poly L, R;
    if (!buildPoly(Ctx, E->lhs(), L) || !buildPoly(Ctx, E->rhs(), R))
      return false;
    return polyMul(Out, L, R);
  }
  }
  return false;
}

/// Certifies Lhs == Rhs when the difference polynomial cancels over ℤ.
bool provePolynomial(const Context &Ctx, const Expr *Lhs, const Expr *Rhs) {
  Poly L, R, Diff;
  if (!buildPoly(Ctx, Lhs, L) || !buildPoly(Ctx, Rhs, R))
    return false;
  if (!polyCombine(Diff, L, R, -1))
    return false;
  return Diff.empty();
}

//===----------------------------------------------------------------------===//
// Prover 2: linear decomposition + integer corner sums
//===----------------------------------------------------------------------===//
//
// Decomposes E = Σ cᵢ·Bᵢ where each Bᵢ is a pure bitwise function of the
// pattern variables or the all-ones column (key nullptr; integer constant k
// embeds as coefficient -k on it, since k = (-k)·(-1) in every Z/2^w).
// Bitwise operators act per bit, so E = Σ_j 2^j · Σᵢ cᵢ·bᵢ(v_j) as an
// integer before reduction: equal corner sums Σᵢ cᵢ·bᵢ(v) on all
// v ∈ {0,1}^t make the two sides equal integers at every width.

/// Linear form: bitwise column (nullptr = all-ones) -> coefficient.
using LinForm = std::map<const Expr *, Coeff>;

/// A pure bitwise column computes the same boolean function at every bit
/// position: variables, bitwise operators, and *bit-uniform* constants
/// (0 and all-ones), whose bits do not vary with position.
bool isPureBitwise(const Context &Ctx, const Expr *E) {
  bool Pure = true;
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (N->isVar() || isBitwiseKind(N->kind()))
      return;
    if (N->isConst() && (N->constValue() == 0 || N->constValue() == Ctx.mask()))
      return;
    Pure = false;
  });
  return Pure;
}

void linAdd(LinForm &F, const Expr *Col, Coeff C) {
  Coeff &Slot = F[Col];
  Slot += C;
  if (Slot == 0)
    F.erase(Col);
}

/// If \p F is constant (only the all-ones column), returns its value.
std::optional<Coeff> linConstant(const LinForm &F) {
  if (F.empty())
    return 0;
  if (F.size() == 1 && F.begin()->first == nullptr)
    return -F.begin()->second; // coefficient c on the -1 column is value -c
  return std::nullopt;
}

bool buildLinForm(const Context &Ctx, const Expr *E, LinForm &Out) {
  // Constants route to the all-ones column (below) rather than the pure-
  // bitwise fast path so linConstant() recognizes them in Mul operands.
  if (!E->isConst() && isPureBitwise(Ctx, E)) {
    Out.clear();
    Out[E] = 1;
    return true;
  }
  switch (E->kind()) {
  case ExprKind::Const:
    Out.clear();
    if (uint64_t V = E->constValue(); V != 0)
      Out[nullptr] = -(Coeff)Ctx.toSigned(V);
    return true;
  case ExprKind::Neg: {
    LinForm Sub;
    if (!buildLinForm(Ctx, E->operand(), Sub))
      return false;
    Out.clear();
    for (const auto &[Col, C] : Sub)
      linAdd(Out, Col, -C);
    return true;
  }
  case ExprKind::Not: {
    // ~e = -e - 1: negate and add one all-ones column unit.
    LinForm Sub;
    if (!buildLinForm(Ctx, E->operand(), Sub))
      return false;
    Out.clear();
    for (const auto &[Col, C] : Sub)
      linAdd(Out, Col, -C);
    linAdd(Out, nullptr, 1); // constant -1 == +1 * (all-ones column)
    return true;
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    LinForm L, R;
    if (!buildLinForm(Ctx, E->lhs(), L) || !buildLinForm(Ctx, E->rhs(), R))
      return false;
    Out = std::move(L);
    Coeff S = E->kind() == ExprKind::Add ? 1 : -1;
    for (const auto &[Col, C] : R)
      linAdd(Out, Col, S * C);
    return true;
  }
  case ExprKind::Mul: {
    LinForm L, R;
    if (!buildLinForm(Ctx, E->lhs(), L) || !buildLinForm(Ctx, E->rhs(), R))
      return false;
    std::optional<Coeff> KL = linConstant(L), KR = linConstant(R);
    if (!KL && !KR)
      return false; // nonlinear: out of this prover's fragment
    const LinForm &Var = KL ? R : L;
    Coeff K = KL ? *KL : *KR;
    Out.clear();
    for (const auto &[Col, C] : Var)
      linAdd(Out, Col, K * C);
    return true;
  }
  default:
    return false; // bitwise op over non-variable operands (not pure): give up
  }
}

/// Integer corner sum of \p F at corner \p CornerBits (bit i = value of
/// pattern variable with dense index VarIdx[i]).
Coeff cornerSum(const Context &Ctx, const LinForm &F,
                const std::vector<unsigned> &VarIdx, unsigned Corner) {
  unsigned MaxIndex = 0;
  for (unsigned I : VarIdx)
    MaxIndex = std::max(MaxIndex, I);
  std::vector<uint64_t> Vals(MaxIndex + 1, 0);
  for (size_t I = 0; I != VarIdx.size(); ++I)
    if (Corner >> I & 1)
      Vals[VarIdx[I]] = Ctx.mask();
  Coeff Sum = 0;
  for (const auto &[Col, C] : F) {
    uint64_t Bit = Col == nullptr ? 1 : (evaluate(Ctx, Col, Vals) & 1);
    Sum += C * (Coeff)Bit;
  }
  return Sum;
}

/// Certifies Lhs == Rhs by comparing integer corner sums. On failure with a
/// successful decomposition, reports the witnessing corner in \p Detail.
bool proveLinearCorners(const Context &Ctx, const Expr *Lhs, const Expr *Rhs,
                        std::string &Detail) {
  LinForm L, R;
  if (!buildLinForm(Ctx, Lhs, L) || !buildLinForm(Ctx, Rhs, R)) {
    Detail = "not decomposable as a linear combination of bitwise columns";
    return false;
  }
  std::vector<const Expr *> Vars = collectVariables(Lhs);
  for (const Expr *V : collectVariables(Rhs))
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  std::vector<unsigned> VarIdx;
  for (const Expr *V : Vars)
    VarIdx.push_back(V->varIndex());
  if (VarIdx.size() > 16) {
    Detail = "too many pattern variables for corner enumeration";
    return false;
  }
  for (unsigned Corner = 0; Corner != (1u << VarIdx.size()); ++Corner) {
    Coeff SL = cornerSum(Ctx, L, VarIdx, Corner);
    Coeff SR = cornerSum(Ctx, R, VarIdx, Corner);
    if (SL != SR) {
      Detail = "corner";
      for (size_t I = 0; I != Vars.size(); ++I)
        Detail += std::string(" ") + Vars[I]->varName() + "=" +
                  ((Corner >> I & 1) ? "1" : "0");
      Detail += ": lhs sum " + std::to_string((long long)SL) + ", rhs sum " +
                std::to_string((long long)SR);
      return false;
    }
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Certification driver
//===----------------------------------------------------------------------===//

CertifySummary mba::certifyRules(RuleSet &RS) {
  CertifySummary Summary;
  const Context &Ctx = RS.patternContext();
  for (EqualityRule &R : RS.rules()) {
    RuleCert Cert;
    Cert.Name = R.Name;
    R.Certified = CertMethod::Uncertified;
    if (provePolynomial(Ctx, R.Lhs, R.Rhs)) {
      R.Certified = CertMethod::Polynomial;
    } else {
      std::string Detail;
      if (proveLinearCorners(Ctx, R.Lhs, R.Rhs, Detail))
        R.Certified = CertMethod::LinearCorner;
      else
        Cert.Detail = Detail;
    }
    Cert.Method = R.Certified;
    if (Cert.ok())
      ++Summary.NumCertified;
    Summary.Results.push_back(std::move(Cert));
  }
  return Summary;
}

const RuleSet &mba::certifiedRules() {
  static RuleSet RS = [] {
    RuleSet S;
    addDefaultRules(S);
    CertifySummary Summary = certifyRules(S);
    if (!Summary.allCertified()) {
      for (const RuleCert &C : Summary.Results)
        if (!C.ok())
          std::fprintf(stderr,
                       "fatal: shipped rewrite rule '%s' failed all-width "
                       "certification: %s\n",
                       C.Name.c_str(), C.Detail.c_str());
      std::abort();
    }
    return S;
  }();
  return RS;
}
