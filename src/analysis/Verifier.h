//===- analysis/Verifier.h - IR well-formedness verifier --------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of expression DAGs against the hash-consing
/// invariants of ast/Context.h. Every pass in this library is supposed to
/// preserve these invariants; the verifier makes them checkable after any
/// pass (and is wired into the fuzz and property test harnesses so every
/// generated and every simplified expression is verified).
///
/// Checked per node:
///  * the kind is a valid ExprKind;
///  * operand arity matches the kind (leaves have no operands, unary nodes
///    exactly one, binary nodes exactly two);
///  * constants are reduced modulo the context mask;
///  * variable indices are in range and consistent with the context's
///    dense variable table;
///  * the node is its own canonical interned representative (structural
///    uniqueness — no duplicate nodes outside the context's intern table);
///  * the reachable graph is acyclic (a DAG, not a cyclic graph).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_ANALYSIS_VERIFIER_H
#define MBA_ANALYSIS_VERIFIER_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <string>

namespace mba {

/// Outcome of a verification run. Empty message means every check passed;
/// otherwise BadNode points at the first offending node (it may be only
/// partially safe to inspect — the message says what is wrong with it).
struct VerifyResult {
  const Expr *BadNode = nullptr;
  std::string Message;

  bool ok() const { return Message.empty(); }
  explicit operator bool() const { return ok(); }
};

/// Verifies every node reachable from \p E against the invariants listed in
/// the file comment. Stops at the first violation.
VerifyResult verifyExpr(const Context &Ctx, const Expr *E);

/// Verifies every node owned by \p Ctx (variables, constants, operators):
/// per-node invariants plus intern-table consistency (each owned node maps
/// back to itself) and the node-count bookkeeping.
VerifyResult verifyContext(const Context &Ctx);

} // namespace mba

#endif // MBA_ANALYSIS_VERIFIER_H
