//===- analysis/KnownBits.h - Known-bits dataflow analysis ------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward known-bits analysis over expression DAGs, in the style of a
/// compiler's computeKnownBits: for every node, which bits are provably 0
/// and which provably 1 on *all* inputs. The MBA signature machinery is
/// blind to constants that are not 0/-1 (a truth table has no column for
/// the 3 in `x & 3`); known-bits reasoning covers exactly that gap — e.g.
/// `(x*2) & 1` folds to 0 because multiplication by two clears bit 0 — so
/// the simplifier runs it as a folding pre-pass.
///
/// Known-bits is one of the three pluggable domains of the abstract-
/// interpretation framework in analysis/AbstractInterp.h; this header keeps
/// the historical standalone interface (moved here from src/mba).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_ANALYSIS_KNOWNBITS_H
#define MBA_ANALYSIS_KNOWNBITS_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <unordered_map>

namespace mba {

/// Bit-level facts about a value. Invariant: Zero & One == 0; both are
/// subsets of the context mask.
struct KnownBits {
  uint64_t Zero = 0; ///< bits provably 0
  uint64_t One = 0;  ///< bits provably 1

  /// All bits decided (the value is the constant One).
  bool isConstant(uint64_t Mask) const { return (Zero | One) == Mask; }

  uint64_t knownMask() const { return Zero | One; }
};

/// Computes known bits for \p E (and memoizes every sub-node into \p Memo
/// when provided).
KnownBits computeKnownBits(const Context &Ctx, const Expr *E);
KnownBits
computeKnownBits(const Context &Ctx, const Expr *E,
                 std::unordered_map<const Expr *, KnownBits> &Memo);

/// Folds every sub-expression whose bits are all decided into the constant
/// it must equal. Returns \p E unchanged when nothing folds.
const Expr *foldKnownBits(Context &Ctx, const Expr *E);

} // namespace mba

#endif // MBA_ANALYSIS_KNOWNBITS_H
