//===- analysis/EGraph.cpp - E-graph with congruence closure --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/EGraph.h"

#include "ast/ExprUtils.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <tuple>

using namespace mba;

EGraph::EGraph(Context &Ctx) : Ctx(Ctx) {}

EClassId EGraph::find(EClassId Id) const {
  while (Parent[Id] != Id) {
    Parent[Id] = Parent[Parent[Id]]; // path halving
    Id = Parent[Id];
  }
  return Id;
}

ENode EGraph::canonicalize(ENode N) const {
  if (isUnaryKind(N.Kind)) {
    N.Lhs = find(N.Lhs);
  } else if (isBinaryKind(N.Kind)) {
    N.Lhs = find(N.Lhs);
    N.Rhs = find(N.Rhs);
  }
  return N;
}

EClassId EGraph::intern(const ENode &N) {
  auto It = Hashcons.find(N);
  if (It != Hashcons.end())
    return find(It->second);
  EClassId Id = (EClassId)Parent.size();
  Parent.push_back(Id);
  Classes.emplace_back();
  Classes[Id].Nodes.push_back(N);
  if (N.Kind == ExprKind::Const)
    Classes[Id].Const = N.Aux;
  Hashcons.emplace(N, Id);
  if (isUnaryKind(N.Kind)) {
    Classes[N.Lhs].Parents.push_back({N, Id});
  } else if (isBinaryKind(N.Kind)) {
    Classes[N.Lhs].Parents.push_back({N, Id});
    if (N.Rhs != N.Lhs)
      Classes[N.Rhs].Parents.push_back({N, Id});
  }
  return Id;
}

uint64_t EGraph::evalOp(ExprKind K, uint64_t A, uint64_t B) const {
  switch (K) {
  case ExprKind::Not: return Ctx.truncate(~A);
  case ExprKind::Neg: return Ctx.truncate(0 - A);
  case ExprKind::Add: return Ctx.truncate(A + B);
  case ExprKind::Sub: return Ctx.truncate(A - B);
  case ExprKind::Mul: return Ctx.truncate(A * B);
  case ExprKind::And: return A & B;
  case ExprKind::Or: return A | B;
  case ExprKind::Xor: return A ^ B;
  default:
    assert(false && "not an operator kind");
    return 0;
  }
}

EClassId EGraph::addVar(unsigned VarIndex) {
  return intern(ENode{ExprKind::Var, 0, 0, VarIndex});
}

EClassId EGraph::addConst(uint64_t Value) {
  return intern(ENode{ExprKind::Const, 0, 0, Ctx.truncate(Value)});
}

EClassId EGraph::addNode(ExprKind K, EClassId A, EClassId B) {
  ENode N;
  N.Kind = K;
  N.Lhs = find(A);
  if (isBinaryKind(K))
    N.Rhs = find(B);
  EClassId Id = intern(N);
  // Eager constant folding: all-constant operands make the class constant.
  if (!Classes[Id].Const) {
    std::optional<uint64_t> CA = Classes[N.Lhs].Const;
    std::optional<uint64_t> CB =
        isBinaryKind(K) ? Classes[N.Rhs].Const : std::optional<uint64_t>(0);
    if (CA && CB) {
      EClassId C = addConst(evalOp(K, *CA, *CB));
      merge(Id, C);
      Id = find(Id);
    }
  }
  return Id;
}

EClassId EGraph::addExpr(const Expr *E) {
  std::unordered_map<const Expr *, EClassId> Memo;
  forEachNodePostOrder(E, [&](const Expr *N) {
    EClassId Id;
    switch (N->kind()) {
    case ExprKind::Var:
      Id = addVar(N->varIndex());
      break;
    case ExprKind::Const:
      Id = addConst(N->constValue());
      break;
    case ExprKind::Not:
    case ExprKind::Neg:
      Id = addNode(N->kind(), Memo.at(N->operand()));
      break;
    default:
      Id = addNode(N->kind(), Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    }
    Memo.emplace(N, Id);
  });
  return find(Memo.at(E));
}

bool EGraph::merge(EClassId A, EClassId B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return false;
  // Union by parent-list size: the smaller class is absorbed, so congruence
  // repair re-canonicalizes the shorter parent list.
  if (Classes[A].Parents.size() < Classes[B].Parents.size())
    std::swap(A, B);
  Parent[B] = A;
  ++Merges;
  EClass &Into = Classes[A], &From = Classes[B];
  Into.Nodes.insert(Into.Nodes.end(), From.Nodes.begin(), From.Nodes.end());
  Into.Parents.insert(Into.Parents.end(), From.Parents.begin(),
                      From.Parents.end());
  if (From.Const) {
    // Two distinct constants in one class would mean an unsound merge was
    // requested; rules are certified, so this cannot happen.
    assert(!Into.Const || *Into.Const == *From.Const);
    Into.Const = From.Const;
  }
  From.Nodes.clear();
  From.Nodes.shrink_to_fit();
  From.Parents.clear();
  From.Parents.shrink_to_fit();
  Dirty.push_back(A);
  return true;
}

void EGraph::rebuild() {
  while (!Dirty.empty()) {
    EClassId Id = find(Dirty.back());
    Dirty.pop_back();
    // Steal the parent list; re-canonicalized survivors are put back.
    std::vector<std::pair<ENode, EClassId>> Parents;
    Parents.swap(Classes[Id].Parents);
    for (auto &[Node, NodeClass] : Parents) {
      Hashcons.erase(Node); // stale key (pre-merge operand ids)
      ENode Canon = canonicalize(Node);
      EClassId Cls = find(NodeClass);
      auto [It, Inserted] = Hashcons.emplace(Canon, Cls);
      if (!Inserted)
        merge(It->second, Cls); // congruence: same canonical node twice
      Cls = find(Cls);
      // Fold operators whose operands became constant through merging.
      if (!Classes[Cls].Const && isBinaryKind(Canon.Kind)) {
        std::optional<uint64_t> CA = Classes[find(Canon.Lhs)].Const;
        std::optional<uint64_t> CB = Classes[find(Canon.Rhs)].Const;
        if (CA && CB)
          merge(Cls, addConst(evalOp(Canon.Kind, *CA, *CB)));
      } else if (!Classes[Cls].Const && isUnaryKind(Canon.Kind)) {
        if (std::optional<uint64_t> CA = Classes[find(Canon.Lhs)].Const)
          merge(Cls, addConst(evalOp(Canon.Kind, *CA, 0)));
      }
      Classes[find(Id)].Parents.push_back({Canon, find(NodeClass)});
    }
    // Deduplicate the class's own nodes under the new canonicalization.
    EClassId Canonical = find(Id);
    std::vector<ENode> &Nodes = Classes[Canonical].Nodes;
    for (ENode &N : Nodes)
      N = canonicalize(N);
    std::sort(Nodes.begin(), Nodes.end(), [](const ENode &X, const ENode &Y) {
      return std::tie(X.Kind, X.Lhs, X.Rhs, X.Aux) <
             std::tie(Y.Kind, Y.Lhs, Y.Rhs, Y.Aux);
    });
    Nodes.erase(std::unique(Nodes.begin(), Nodes.end()), Nodes.end());
  }
}

std::optional<uint64_t> EGraph::constantOf(EClassId Id) const {
  return Classes[find(Id)].Const;
}

const std::vector<ENode> &EGraph::nodesOf(EClassId Id) const {
  return Classes[find(Id)].Nodes;
}

std::vector<EClassId> EGraph::canonicalClasses() const {
  std::vector<EClassId> Ids;
  for (EClassId Id = 0; Id != (EClassId)Parent.size(); ++Id)
    if (find(Id) == Id)
      Ids.push_back(Id);
  return Ids;
}

size_t EGraph::numClasses() const {
  size_t N = 0;
  for (EClassId Id = 0; Id != (EClassId)Parent.size(); ++Id)
    if (find(Id) == Id)
      ++N;
  return N;
}

const Expr *EGraph::extract(EClassId Root) const {
  Root = find(Root);
  const size_t Inf = std::numeric_limits<size_t>::max();
  // Minimal tree-size cost per class, to a fixpoint (bottom-up; the e-graph
  // may contain cycles through merged classes, which simply never relax).
  std::unordered_map<EClassId, std::pair<size_t, ENode>> Best;
  bool Changed = true;
  auto CostOf = [&](EClassId Id) -> size_t {
    auto It = Best.find(find(Id));
    return It == Best.end() ? Inf : It->second.first;
  };
  std::vector<EClassId> Live = canonicalClasses();
  while (Changed) {
    Changed = false;
    for (EClassId Id : Live) {
      for (const ENode &N : Classes[Id].Nodes) {
        size_t Cost;
        if (N.Kind == ExprKind::Var || N.Kind == ExprKind::Const) {
          Cost = 1;
        } else if (isUnaryKind(N.Kind)) {
          size_t C = CostOf(N.Lhs);
          Cost = C == Inf ? Inf : C + 1;
        } else {
          size_t CL = CostOf(N.Lhs), CR = CostOf(N.Rhs);
          Cost = (CL == Inf || CR == Inf ||
                  CL + CR >= Inf - 1)
                     ? Inf
                     : CL + CR + 1;
        }
        if (Cost < CostOf(Id)) {
          Best[Id] = {Cost, N};
          Changed = true;
        }
      }
    }
  }
  if (Best.find(Root) == Best.end())
    return nullptr;
  // Build the chosen representative recursively (memoized per class).
  std::unordered_map<EClassId, const Expr *> Built;
  std::function<const Expr *(EClassId)> Build =
      [&](EClassId Id) -> const Expr * {
    Id = find(Id);
    if (auto It = Built.find(Id); It != Built.end())
      return It->second;
    const ENode &N = Best.at(Id).second;
    const Expr *E;
    switch (N.Kind) {
    case ExprKind::Var:
      E = Ctx.getVarByIndex((unsigned)N.Aux);
      break;
    case ExprKind::Const:
      E = Ctx.getConst(N.Aux);
      break;
    case ExprKind::Not:
    case ExprKind::Neg:
      E = Ctx.getUnary(N.Kind, Build(N.Lhs));
      break;
    default:
      E = Ctx.getBinary(N.Kind, Build(N.Lhs), Build(N.Rhs));
      break;
    }
    Built.emplace(Id, E);
    return E;
  };
  return Build(Root);
}
