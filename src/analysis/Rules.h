//===- analysis/Rules.h - Certified declarative rewrite rules ---*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative rewrite-rule table driving equality saturation
/// (analysis/Prover.h), and the certification pass that statically proves
/// every rule sound for **all** bit widths before it may be used. A rule is
/// a pair of pattern expressions over pattern variables (`a`, `b`, `c`);
/// it asserts that both sides agree on Z/2^w for every w and every value of
/// the pattern variables. The table is data, not code: an uncertified rule
/// is rejected at load time, so an unsound entry cannot corrupt results —
/// it fails the build (CI runs `mba_cli certify`).
///
/// Certification uses two width-parametric provers; either suffices:
///
///  * **Polynomial**: interpret both sides as formal polynomials over ℤ
///    with atoms = pattern variables and opaque bitwise subterms, using the
///    all-width ring identities of Z/2^w (`~e = -e - 1`). If LHS − RHS
///    cancels to the zero polynomial over ℤ, the rule holds in every
///    quotient ring Z/2^w. Certifies ring axioms (associativity,
///    distributivity, negation algebra).
///
///  * **Linear corners** (width-parametric ANF on symbolic bits): decompose
///    both sides as Σ cᵢ·Bᵢ where each Bᵢ is a pure bitwise function of the
///    pattern variables or the all-ones column (integer constants k embed
///    as −k·(−1), the paper's encoding). Bitwise operators act
///    independently per bit position, so the value is Σ_j 2^j · Σᵢ cᵢ·bᵢ(v_j)
///    with v_j the j-th bits of the variables. If the *integer* sums
///    Σᵢ cᵢ·bᵢ(v) agree on all 2^t corners v ∈ {0,1}^t, both sides agree on
///    every bit of every width — Theorem 1 generalized to all w at once.
///    Certifies the Table 5 / HAKMEM linear-MBA identities and all pure
///    bitwise laws.
///
/// Both provers are sound (a certificate implies all-width equivalence);
/// a rule neither can prove is rejected even if true.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_ANALYSIS_RULES_H
#define MBA_ANALYSIS_RULES_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mba {

/// How a rule was proved sound for all widths.
enum class CertMethod : uint8_t {
  Uncertified, ///< not (yet) certified; the prover must ignore the rule
  Polynomial,  ///< formal-ℤ polynomial identity over atoms
  LinearCorner ///< per-bit linear decomposition, integer corner sums
};

const char *certMethodName(CertMethod M);

/// One declarative rewrite rule `Lhs == Rhs` over pattern variables.
struct EqualityRule {
  std::string Name;     ///< stable id, e.g. "add-to-or-and"
  std::string LhsText;  ///< surface syntax, kept for reports
  std::string RhsText;
  const Expr *Lhs = nullptr; ///< parsed into the owning set's pattern context
  const Expr *Rhs = nullptr;
  bool Bidirectional = false; ///< also match Rhs and rewrite to Lhs
  CertMethod Certified = CertMethod::Uncertified;
};

/// A set of rewrite rules sharing one pattern context. Every variable
/// occurring in a pattern is a pattern variable that matches any e-class.
/// Constants in patterns match the same constant truncated to the target
/// width (so `-1` matches the all-ones word at any width).
class RuleSet {
public:
  RuleSet();
  RuleSet(RuleSet &&) = default;
  RuleSet &operator=(RuleSet &&) = default;

  /// Parses and appends a rule. Aborts on pattern syntax errors (the table
  /// is compiled-in data; a malformed pattern is a programming error).
  /// Patterns are constant-folded after parsing, so `-1` is a Const node.
  void add(std::string Name, std::string_view Lhs, std::string_view Rhs,
           bool Bidirectional = false);

  std::span<const EqualityRule> rules() const { return Rules; }
  std::span<EqualityRule> rules() { return Rules; }

  /// The context the patterns live in (width 64; pattern constants are
  /// re-truncated to the target width when matching).
  Context &patternContext() { return *PatCtx; }
  const Context &patternContext() const { return *PatCtx; }

  /// Number of distinct pattern variables across all rules. Cached at
  /// add() time so concurrent matchers (e.g. per-worker provers sharing
  /// certifiedRules()) never touch the pattern context, whose accessors
  /// are guarded by the owner-thread capability of the thread that first
  /// built the set.
  unsigned numPatternVars() const { return NumPatVars; }

  /// Drops every rule not marked certified. Returns the number removed.
  size_t pruneUncertified();

private:
  std::unique_ptr<Context> PatCtx;
  std::vector<EqualityRule> Rules;
  unsigned NumPatVars = 0;
};

/// Appends the shipped rule table: ring axioms of Z/2^w, the bitwise
/// lattice laws, the bitwise/arithmetic bridges (Table 5, HAKMEM, Hacker's
/// Delight), and arithmetic-reduction rules.
void addDefaultRules(RuleSet &RS);

/// Per-rule certification outcome.
struct RuleCert {
  std::string Name;
  CertMethod Method = CertMethod::Uncertified;
  std::string Detail; ///< failure reason / corner witness when uncertified
  bool ok() const { return Method != CertMethod::Uncertified; }
};

/// Result of certifying a whole rule set.
struct CertifySummary {
  std::vector<RuleCert> Results;
  size_t NumCertified = 0;
  bool allCertified() const { return NumCertified == Results.size(); }
};

/// Tries to prove every rule of \p RS sound for all widths, marking each
/// rule's Certified method. Already-certified rules are re-proved (the call
/// is idempotent). Rules that fail stay Uncertified and are reported with
/// the reason; callers gate on allCertified() or pruneUncertified().
CertifySummary certifyRules(RuleSet &RS);

/// The shipped rule table, certified once on first use; aborts the process
/// if any shipped rule fails certification (the table is trusted data — a
/// failure means the table was edited without re-running certification).
const RuleSet &certifiedRules();

} // namespace mba

#endif // MBA_ANALYSIS_RULES_H
