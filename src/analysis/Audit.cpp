//===- analysis/Audit.cpp - Rewrite audit trail and auditor ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"

#include "analysis/AbstractInterp.h"
#include "analysis/Verifier.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Printer.h"
#include "support/RNG.h"

#include <algorithm>

using namespace mba;

namespace {

/// Distinct variables of both sides, name-sorted (union preserves the
/// canonical order used by signatures).
std::vector<const Expr *> unionVariables(const Expr *A, const Expr *B) {
  std::vector<const Expr *> Vars = collectVariables(A);
  for (const Expr *V : collectVariables(B))
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  std::sort(Vars.begin(), Vars.end(), [](const Expr *X, const Expr *Y) {
    return std::string_view(X->varName()) < std::string_view(Y->varName());
  });
  return Vars;
}

/// Replays one step's checks and produces issues.
class StepAuditor {
public:
  StepAuditor(const Context &Ctx, const AuditOptions &Opts) : Ctx(Ctx),
      Opts(Opts), Rng(Opts.Seed) {}

  void audit(const RewriteStep &Step, std::vector<AuditIssue> &Issues) {
    if (Opts.CheckStructure) {
      for (const Expr *Side : {Step.Before, Step.After}) {
        VerifyResult R = verifyExpr(Ctx, Side);
        if (!R.ok()) {
          Issues.push_back({Step, "structure",
                            (Side == Step.Before ? "before: " : "after: ") +
                                R.Message,
                            ""});
          return; // do not evaluate malformed nodes
        }
      }
    }

    std::vector<const Expr *> Vars = unionVariables(Step.Before, Step.After);
    unsigned MaxIndex = 0;
    for (const Expr *V : Vars)
      MaxIndex = std::max(MaxIndex, V->varIndex());
    std::vector<uint64_t> Vals(Vars.empty() ? 0 : MaxIndex + 1, 0);

    if (Opts.CheckAbstract) {
      if (auto R = refuteEquivalence(Ctx, Step.Before, Step.After)) {
        // A refutation means the sides differ on *every* input, so any
        // assignment is a witness; the all-zeros one is already minimal.
        std::fill(Vals.begin(), Vals.end(), 0);
        Issues.push_back({Step, "abstract", R->Domain + ": " + R->Detail,
                          reproducer(Step, Vars, Vals)});
        return;
      }
    }

    if (Opts.CheckSignatures) {
      // Truth-table corners: every variable 0 or all-ones. Row k of the
      // signature vector is -E(corner_k), so corner agreement is signature
      // agreement (complete for linear MBA by Theorem 1).
      unsigned T = (unsigned)Vars.size();
      if (T <= Opts.MaxCornerVars) {
        for (uint64_t K = 0; K != (1ULL << T); ++K) {
          for (unsigned I = 0; I != T; ++I)
            Vals[Vars[I]->varIndex()] = (K >> I & 1) ? Ctx.mask() : 0;
          if (flagMismatch(Step, Vars, Vals, "signature",
                           "signature row " + std::to_string(K) +
                               " (truth-table corner) disagrees",
                           Issues))
            return;
        }
      } else {
        for (unsigned I = 0; I != Opts.RandomSamples; ++I) {
          for (const Expr *V : Vars)
            Vals[V->varIndex()] = Rng.chance(1, 2) ? Ctx.mask() : 0;
          if (flagMismatch(Step, Vars, Vals, "signature",
                           "sampled truth-table corner disagrees", Issues))
            return;
        }
      }
    }

    if (Opts.CheckConcrete) {
      for (unsigned I = 0; I != Opts.RandomSamples; ++I) {
        for (const Expr *V : Vars)
          Vals[V->varIndex()] = Rng.next() & Ctx.mask();
        if (flagMismatch(Step, Vars, Vals, "concrete",
                         "random concrete evaluation disagrees", Issues))
          return;
      }
    }
  }

private:
  /// If the sides disagree under \p Vals, records an issue with a
  /// minimized reproducer and returns true.
  bool flagMismatch(const RewriteStep &Step,
                    const std::vector<const Expr *> &Vars,
                    std::vector<uint64_t> &Vals, const char *Check,
                    std::string Detail, std::vector<AuditIssue> &Issues) {
    if (evaluate(Ctx, Step.Before, Vals) == evaluate(Ctx, Step.After, Vals))
      return false;
    minimizeWitness(Step, Vars, Vals);
    Issues.push_back(
        {Step, Check, std::move(Detail), reproducer(Step, Vars, Vals)});
    return true;
  }

  /// Greedy witness shrinking: drive each variable toward 0, then 1, then
  /// a single low bit, keeping any replacement under which the two sides
  /// still disagree.
  void minimizeWitness(const RewriteStep &Step,
                       const std::vector<const Expr *> &Vars,
                       std::vector<uint64_t> &Vals) const {
    auto Disagrees = [&] {
      return evaluate(Ctx, Step.Before, Vals) !=
             evaluate(Ctx, Step.After, Vals);
    };
    for (const Expr *V : Vars) {
      uint64_t &Slot = Vals[V->varIndex()];
      uint64_t Original = Slot;
      for (uint64_t Candidate : {(uint64_t)0, (uint64_t)1,
                                 Original & (0 - Original) /*lowest bit*/}) {
        if (Candidate == Original)
          continue;
        Slot = Candidate;
        if (Disagrees())
          break; // keep the simpler value
        Slot = Original;
      }
    }
  }

  std::string reproducer(const RewriteStep &Step,
                         const std::vector<const Expr *> &Vars,
                         const std::vector<uint64_t> &Vals) const {
    std::string S = "rule '" + std::string(Step.Rule) +
                    "': " + printExpr(Ctx, Step.Before) + "  -->  " +
                    printExpr(Ctx, Step.After) + "\n  width " +
                    std::to_string(Ctx.width());
    for (const Expr *V : Vars)
      S += std::string(", ") + V->varName() + " = " +
           std::to_string(Vals[V->varIndex()]);
    S += ": lhs = " + std::to_string(evaluate(Ctx, Step.Before, Vals)) +
         ", rhs = " + std::to_string(evaluate(Ctx, Step.After, Vals));
    return S;
  }

  const Context &Ctx;
  const AuditOptions &Opts;
  RNG Rng;
};

} // namespace

AuditReport mba::auditTrail(const Context &Ctx, const RewriteTrail &Trail,
                            const AuditOptions &Opts) {
  AuditReport Report;
  StepAuditor Auditor(Ctx, Opts);
  for (const RewriteStep &Step : Trail.steps()) {
    ++Report.StepsChecked;
    Auditor.audit(Step, Report.Issues);
  }
  return Report;
}
