//===- linalg/TruthTable.cpp - Truth tables of bitwise expressions -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/TruthTable.h"

#include "ast/Evaluator.h"

using namespace mba;

std::vector<uint64_t> mba::cornerAssignment(const Context &Ctx, unsigned Row,
                                            std::span<const Expr *const> Vars) {
  std::vector<uint64_t> Values(Vars.size(), 0);
  for (unsigned I = 0, T = (unsigned)Vars.size(); I != T; ++I)
    if (truthBit(Row, I, T))
      Values[I] = Ctx.mask();
  return Values;
}

std::vector<uint8_t> mba::truthColumn(const Context &Ctx, const Expr *E,
                                      std::span<const Expr *const> Vars) {
  unsigned T = (unsigned)Vars.size();
  assert(T <= 20 && "truth table would be too large");
  std::vector<uint8_t> Column(1u << T);
  std::unordered_map<const Expr *, uint64_t> Assignment;
  for (unsigned Row = 0; Row != (1u << T); ++Row) {
    Assignment.clear();
    for (unsigned I = 0; I != T; ++I)
      Assignment[Vars[I]] = truthBit(Row, I, T) ? Ctx.mask() : 0;
    uint64_t V = evaluate(Ctx, E, Assignment);
    assert((V == 0 || V == Ctx.mask()) &&
           "expression is not pure bitwise over the given variables");
    Column[Row] = V != 0;
  }
  return Column;
}

std::vector<uint8_t>
mba::truthTableMatrix(const Context &Ctx, std::span<const Expr *const> Exprs,
                      std::span<const Expr *const> Vars) {
  unsigned T = (unsigned)Vars.size();
  unsigned Rows = 1u << T;
  unsigned Cols = (unsigned)Exprs.size();
  std::vector<uint8_t> Matrix(Rows * Cols);
  for (unsigned Col = 0; Col != Cols; ++Col) {
    std::vector<uint8_t> Column = truthColumn(Ctx, Exprs[Col], Vars);
    for (unsigned Row = 0; Row != Rows; ++Row)
      Matrix[Row * Cols + Col] = Column[Row];
  }
  return Matrix;
}
