//===- linalg/TruthTable.cpp - Truth tables of bitwise expressions -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/TruthTable.h"

#include "ast/Evaluator.h"

#include <algorithm>
#include <unordered_map>

using namespace mba;

std::vector<uint64_t> mba::cornerAssignment(const Context &Ctx, unsigned Row,
                                            std::span<const Expr *const> Vars) {
  std::vector<uint64_t> Values(Vars.size(), 0);
  for (unsigned I = 0, T = (unsigned)Vars.size(); I != T; ++I)
    if (truthBit(Row, I, T))
      Values[I] = Ctx.mask();
  return Values;
}

std::vector<uint8_t> mba::truthColumn(const Context &Ctx, const Expr *E,
                                      std::span<const Expr *const> Vars) {
  unsigned T = (unsigned)Vars.size();
  assert(T <= 20 && "truth table would be too large");
  std::vector<uint8_t> Column(1u << T);
  std::unordered_map<const Expr *, uint64_t> Assignment;
  for (unsigned Row = 0; Row != (1u << T); ++Row) {
    Assignment.clear();
    for (unsigned I = 0; I != T; ++I)
      Assignment[Vars[I]] = truthBit(Row, I, T) ? Ctx.mask() : 0;
    uint64_t V = evaluate(Ctx, E, Assignment);
    assert((V == 0 || V == Ctx.mask()) &&
           "expression is not pure bitwise over the given variables");
    Column[Row] = V != 0;
  }
  return Column;
}

namespace {

/// Whether \p E can be evaluated 64 truth-table rows at a time: a DAG of
/// And/Or/Xor/Not over variables from \p VarPos and 0 / all-ones
/// constants. Arithmetic nodes (e.g. -x-1, semantically ~x) need the
/// scalar word-level evaluator.
bool isPackedEvaluable(
    const Context &Ctx, const Expr *E,
    const std::unordered_map<const Expr *, unsigned> &VarPos) {
  switch (E->kind()) {
  case ExprKind::Var:
    return VarPos.count(E) != 0;
  case ExprKind::Const:
    return E->constValue() == 0 || E->constValue() == Ctx.mask();
  case ExprKind::Not:
    return isPackedEvaluable(Ctx, E->lhs(), VarPos);
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Xor:
    return isPackedEvaluable(Ctx, E->lhs(), VarPos) &&
           isPackedEvaluable(Ctx, E->rhs(), VarPos);
  default:
    return false;
  }
}

/// Fills \p Out with the packed column of the variable whose truth bit is
/// bit \p P of the row index. Within a 64-row block the low six row bits
/// select the bit position, so P < 6 is a fixed per-word pattern and P >= 6
/// selects whole blocks by bit P-6 of the block index.
void packedVarColumn(unsigned P, std::vector<uint64_t> &Out) {
  static const uint64_t Pattern[6] = {
      0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
      0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
  if (P < 6) {
    std::fill(Out.begin(), Out.end(), Pattern[P]);
    return;
  }
  for (size_t Block = 0; Block != Out.size(); ++Block)
    Out[Block] = (Block >> (P - 6)) & 1 ? ~0ULL : 0;
}

void evalPacked(const Context &Ctx, const Expr *E, unsigned T,
                const std::unordered_map<const Expr *, unsigned> &VarPos,
                std::unordered_map<const Expr *, std::vector<uint64_t>> &Memo,
                std::vector<uint64_t> &Out) {
  auto It = Memo.find(E);
  if (It != Memo.end()) {
    Out = It->second;
    return;
  }
  switch (E->kind()) {
  case ExprKind::Var:
    packedVarColumn(T - 1 - VarPos.at(E), Out);
    break;
  case ExprKind::Const:
    std::fill(Out.begin(), Out.end(), E->constValue() ? ~0ULL : 0);
    break;
  case ExprKind::Not:
    evalPacked(Ctx, E->lhs(), T, VarPos, Memo, Out);
    for (uint64_t &Block : Out)
      Block = ~Block;
    break;
  default: {
    std::vector<uint64_t> Rhs(Out.size());
    evalPacked(Ctx, E->lhs(), T, VarPos, Memo, Out);
    evalPacked(Ctx, E->rhs(), T, VarPos, Memo, Rhs);
    for (size_t I = 0; I != Out.size(); ++I)
      Out[I] = E->kind() == ExprKind::And   ? Out[I] & Rhs[I]
               : E->kind() == ExprKind::Or  ? Out[I] | Rhs[I]
                                            : Out[I] ^ Rhs[I];
    break;
  }
  }
  Memo.emplace(E, Out);
}

} // namespace

std::vector<uint64_t>
mba::truthColumnPacked(const Context &Ctx, const Expr *E,
                       std::span<const Expr *const> Vars) {
  unsigned T = (unsigned)Vars.size();
  assert(T <= 20 && "truth table would be too large");
  size_t Rows = (size_t)1 << T;
  std::vector<uint64_t> Packed((Rows + 63) / 64, 0);

  std::unordered_map<const Expr *, unsigned> VarPos;
  for (unsigned I = 0; I != T; ++I)
    VarPos.emplace(Vars[I], I);

  if (isPackedEvaluable(Ctx, E, VarPos)) {
    std::unordered_map<const Expr *, std::vector<uint64_t>> Memo;
    evalPacked(Ctx, E, T, VarPos, Memo, Packed);
  } else {
    std::vector<uint8_t> Column = truthColumn(Ctx, E, Vars);
    for (size_t Row = 0; Row != Rows; ++Row)
      if (Column[Row])
        Packed[Row >> 6] |= 1ULL << (Row & 63);
  }
  if (Rows < 64)
    Packed[0] &= ((uint64_t)1 << Rows) - 1; // zero the unused tail
  return Packed;
}

std::vector<uint8_t>
mba::truthTableMatrix(const Context &Ctx, std::span<const Expr *const> Exprs,
                      std::span<const Expr *const> Vars) {
  unsigned T = (unsigned)Vars.size();
  unsigned Rows = 1u << T;
  unsigned Cols = (unsigned)Exprs.size();
  std::vector<uint8_t> Matrix(Rows * Cols);
  for (unsigned Col = 0; Col != Cols; ++Col) {
    std::vector<uint64_t> Column = truthColumnPacked(Ctx, Exprs[Col], Vars);
    for (unsigned Row = 0; Row != Rows; ++Row)
      Matrix[Row * Cols + Col] = Column[Row >> 6] >> (Row & 63) & 1;
  }
  return Matrix;
}
