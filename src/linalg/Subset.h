//===- linalg/Subset.h - Subset-lattice zeta/Moebius transforms -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fast zeta and Moebius transforms over the subset lattice of t variables,
/// with coefficients in Z/2^w. These are the exact solver for the paper's
/// normalized-basis coefficient system (Section 4.3): the truth-table matrix
/// of the conjunction basis {AND of each nonempty variable subset} + {-1} is
/// the subset zeta matrix, which is unitriangular, so the coefficient solve
/// is Moebius inversion — exact over the ring, no floating point (the
/// paper's NumPy-based prototype solves the same system numerically).
///
/// Convention: index k of the array is the truth-table row; the subset it
/// denotes is the set of variables assigned 1 in that row (variable i of t
/// occupies bit (t-1-i), see TruthTable.h).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_LINALG_SUBSET_H
#define MBA_LINALG_SUBSET_H

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace mba {

/// In-place subset zeta transform modulo 2^w:
///   Out[S] = sum over T subset of S of In[T]  (mod 2^w).
/// \p Data.size() must be a power of two; \p Mask selects the word width.
void subsetZeta(std::span<uint64_t> Data, uint64_t Mask);

/// In-place Moebius inversion (the inverse of subsetZeta) modulo 2^w:
///   Out[S] = sum over T subset of S of (-1)^{|S|-|T|} In[T]  (mod 2^w).
void subsetMoebius(std::span<uint64_t> Data, uint64_t Mask);

} // namespace mba

#endif // MBA_LINALG_SUBSET_H
