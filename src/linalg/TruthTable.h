//===- linalg/TruthTable.h - Truth tables of bitwise expressions -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Truth tables of bitwise expressions, in the row convention of the paper's
/// Section 2.1: for variables (x1, ..., xt) listed in order, row k of the
/// table assigns variable xi the truth value in bit (t-1-i) of k, i.e. rows
/// enumerate (0,...,0,0), (0,...,0,1), ..., (1,...,1,1) with the *first*
/// variable as the most significant bit — exactly how the paper's matrices
/// list (x, y) pairs.
///
/// Because MBA identities live on w-bit words, a truth value of 1 at a word
/// level corresponds to the all-ones word (the paper encodes that column as
/// -1 on two's-complement integers). The "corner assignment" of row k is the
/// word-level input that realizes the row: each variable is 0 or ~0.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_LINALG_TRUTHTABLE_H
#define MBA_LINALG_TRUTHTABLE_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mba {

/// Truth value (0/1) of variable number \p VarPos (position within the
/// ordered variable list of size \p NumVars) in truth-table row \p Row.
inline unsigned truthBit(unsigned Row, unsigned VarPos, unsigned NumVars) {
  assert(VarPos < NumVars && "variable position out of range");
  return (Row >> (NumVars - 1 - VarPos)) & 1;
}

/// Word-level corner assignment of truth-table row \p Row: each variable in
/// \p Vars maps to 0 or the all-ones word. Result is indexed by position in
/// \p Vars.
std::vector<uint64_t> cornerAssignment(const Context &Ctx, unsigned Row,
                                       std::span<const Expr *const> Vars);

/// The truth-table column of the pure-bitwise expression \p E over the
/// ordered variables \p Vars: 2^|Vars| entries, each 0 or 1.
///
/// \p E must be pure bitwise over a subset of \p Vars (asserted in debug
/// builds: a bitwise expression evaluates to 0 or ~0 on corner inputs).
std::vector<uint8_t> truthColumn(const Context &Ctx, const Expr *E,
                                 std::span<const Expr *const> Vars);

/// The same column word-packed: bit Row of block Row/64 holds the truth
/// value of row Row, (2^|Vars| + 63) / 64 blocks total, unused tail bits
/// zero. Structurally bitwise expressions (And/Or/Xor/Not over \p Vars and
/// 0 / all-ones constants) are evaluated 64 rows at a time with word
/// operations; anything else falls back to the scalar row loop. Always
/// agrees with truthColumn bit for bit.
std::vector<uint64_t> truthColumnPacked(const Context &Ctx, const Expr *E,
                                        std::span<const Expr *const> Vars);

/// The full truth-table matrix of \p Exprs (one column per expression),
/// stored row-major: Matrix[Row * Exprs.size() + Col].
std::vector<uint8_t> truthTableMatrix(const Context &Ctx,
                                      std::span<const Expr *const> Exprs,
                                      std::span<const Expr *const> Vars);

} // namespace mba

#endif // MBA_LINALG_TRUTHTABLE_H
