//===- linalg/IntKernel.cpp - Integer kernel of small matrices -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/IntKernel.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

using namespace mba;

namespace {

/// Minimal exact rational (int64 components). Inputs in this library are
/// tiny truth-table matrices, so no overflow protection beyond asserts is
/// needed.
struct Rat {
  int64_t Num = 0;
  int64_t Den = 1;

  Rat() = default;
  Rat(int64_t N) : Num(N), Den(1) {}
  Rat(int64_t N, int64_t D) : Num(N), Den(D) { normalize(); }

  void normalize() {
    assert(Den != 0 && "zero denominator");
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    int64_t G = std::gcd(std::abs(Num), Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
    if (Num == 0)
      Den = 1;
  }

  bool isZero() const { return Num == 0; }

  Rat operator+(const Rat &O) const {
    return Rat(Num * O.Den + O.Num * Den, Den * O.Den);
  }
  Rat operator-(const Rat &O) const {
    return Rat(Num * O.Den - O.Num * Den, Den * O.Den);
  }
  Rat operator*(const Rat &O) const { return Rat(Num * O.Num, Den * O.Den); }
  Rat operator/(const Rat &O) const {
    assert(!O.isZero() && "division by zero");
    return Rat(Num * O.Den, Den * O.Num);
  }
};

/// Row-echelon form over Q with pivot bookkeeping.
struct Echelon {
  std::vector<std::vector<Rat>> RowsData;
  std::vector<unsigned> PivotCols; // pivot column of each echelon row
  unsigned Cols;

  explicit Echelon(const IntMatrix &M) : Cols(M.Cols) {
    RowsData.reserve(M.Rows);
    for (unsigned R = 0; R != M.Rows; ++R) {
      std::vector<Rat> Row(M.Cols);
      for (unsigned C = 0; C != M.Cols; ++C)
        Row[C] = Rat(M.at(R, C));
      RowsData.push_back(std::move(Row));
    }
    reduce();
  }

  void reduce() {
    unsigned PivotRow = 0;
    for (unsigned Col = 0; Col != Cols && PivotRow != RowsData.size(); ++Col) {
      unsigned Found = (unsigned)RowsData.size();
      for (unsigned R = PivotRow; R != RowsData.size(); ++R) {
        if (!RowsData[R][Col].isZero()) {
          Found = R;
          break;
        }
      }
      if (Found == RowsData.size())
        continue;
      std::swap(RowsData[PivotRow], RowsData[Found]);
      // Scale the pivot row to a leading 1, then eliminate the column
      // everywhere else (reduced echelon form simplifies back-substitution).
      Rat Inv = Rat(1) / RowsData[PivotRow][Col];
      for (unsigned C = Col; C != Cols; ++C)
        RowsData[PivotRow][C] = RowsData[PivotRow][C] * Inv;
      for (unsigned R = 0; R != RowsData.size(); ++R) {
        if (R == PivotRow || RowsData[R][Col].isZero())
          continue;
        Rat Factor = RowsData[R][Col];
        for (unsigned C = Col; C != Cols; ++C)
          RowsData[R][C] = RowsData[R][C] - Factor * RowsData[PivotRow][C];
      }
      PivotCols.push_back(Col);
      ++PivotRow;
    }
  }
};

} // namespace

std::optional<std::vector<int64_t>>
mba::integerKernelVector(const IntMatrix &M, unsigned FreeChoice) {
  Echelon E(M);
  unsigned Rank = (unsigned)E.PivotCols.size();
  if (Rank == M.Cols)
    return std::nullopt; // full column rank: trivial kernel

  // Enumerate free (non-pivot) columns and pick one.
  std::vector<unsigned> FreeCols;
  for (unsigned C = 0, P = 0; C != M.Cols; ++C) {
    if (P < Rank && E.PivotCols[P] == C)
      ++P;
    else
      FreeCols.push_back(C);
  }
  unsigned Free = FreeCols[FreeChoice % FreeCols.size()];

  // Kernel vector: free column = 1, other free columns = 0, pivot columns
  // from the reduced echelon rows: x_pivot = -row[Free].
  std::vector<Rat> X(M.Cols, Rat(0));
  X[Free] = Rat(1);
  for (unsigned P = 0; P != Rank; ++P)
    X[E.PivotCols[P]] = Rat(0) - E.RowsData[P][Free];

  // Clear denominators and divide by content.
  int64_t Lcm = 1;
  for (const Rat &V : X)
    Lcm = std::lcm(Lcm, V.Den);
  std::vector<int64_t> Result(M.Cols);
  for (unsigned C = 0; C != M.Cols; ++C)
    Result[C] = X[C].Num * (Lcm / X[C].Den);
  int64_t Content = 0;
  for (int64_t V : Result)
    Content = std::gcd(Content, std::abs(V));
  assert(Content != 0 && "kernel vector must be nonzero");
  if (Content > 1)
    for (int64_t &V : Result)
      V /= Content;
  return Result;
}

unsigned mba::rationalRank(const IntMatrix &M) {
  return (unsigned)Echelon(M).PivotCols.size();
}
