//===- linalg/Subset.cpp - Subset-lattice zeta/Moebius transforms --------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/Subset.h"

using namespace mba;

[[maybe_unused]] static bool isPowerOfTwo(size_t N) {
  return N != 0 && (N & (N - 1)) == 0;
}

void mba::subsetZeta(std::span<uint64_t> Data, uint64_t Mask) {
  assert(isPowerOfTwo(Data.size()) && "size must be a power of two");
  size_t N = Data.size();
  for (size_t Bit = 1; Bit < N; Bit <<= 1)
    for (size_t S = 0; S < N; ++S)
      if (S & Bit)
        Data[S] = (Data[S] + Data[S ^ Bit]) & Mask;
}

void mba::subsetMoebius(std::span<uint64_t> Data, uint64_t Mask) {
  assert(isPowerOfTwo(Data.size()) && "size must be a power of two");
  size_t N = Data.size();
  for (size_t Bit = 1; Bit < N; Bit <<= 1)
    for (size_t S = 0; S < N; ++S)
      if (S & Bit)
        Data[S] = (Data[S] - Data[S ^ Bit]) & Mask;
}
