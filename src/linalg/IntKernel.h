//===- linalg/IntKernel.h - Integer kernel of small matrices ----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact integer null-space vectors of small integer matrices. This is the
/// engine behind Zhou et al.'s construction of linear MBA identities
/// (Example 1 of the paper): take the truth-table matrix M of a set of
/// bitwise expressions, find a nonzero integer vector C with M C = 0, and
/// the linear combination of the expressions with coefficients C is
/// identically zero on all w-bit inputs.
///
/// Elimination is exact over the rationals (int64 numerator/denominator with
/// gcd reduction); matrix entries in this library are 0/1 truth values and
/// dimensions are at most 2^t x m with t <= 4, so magnitudes stay tiny.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_LINALG_INTKERNEL_H
#define MBA_LINALG_INTKERNEL_H

#include <cstdint>
#include <optional>
#include <vector>

namespace mba {

/// A dense Rows x Cols integer matrix, row-major.
struct IntMatrix {
  unsigned Rows = 0;
  unsigned Cols = 0;
  std::vector<int64_t> Data;

  int64_t &at(unsigned Row, unsigned Col) { return Data[Row * Cols + Col]; }
  int64_t at(unsigned Row, unsigned Col) const {
    return Data[Row * Cols + Col];
  }
};

/// Returns a nonzero integer vector C with M C = 0, or std::nullopt when the
/// kernel is trivial (matrix has full column rank). The returned vector has
/// coprime entries (content 1). When several kernel dimensions exist,
/// \p FreeChoice selects which free column is set to 1 (modulo the number of
/// free columns), allowing callers to sample different kernel vectors.
std::optional<std::vector<int64_t>> integerKernelVector(const IntMatrix &M,
                                                        unsigned FreeChoice = 0);

/// Rank of \p M over the rationals.
unsigned rationalRank(const IntMatrix &M);

} // namespace mba

#endif // MBA_LINALG_INTKERNEL_H
