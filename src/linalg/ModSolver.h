//===- linalg/ModSolver.h - Linear systems over Z/2^w -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact linear-system solving over the ring Z/2^w. An element of Z/2^w is
/// invertible iff it is odd, so Gaussian elimination succeeds whenever an
/// odd pivot can be found in every column — which is guaranteed when the
/// matrix is invertible over the ring (odd determinant). This covers every
/// basis matrix the simplifier uses (the conjunction basis of Table 4 and
/// the alternative bases of Table 9 are unimodular).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_LINALG_MODSOLVER_H
#define MBA_LINALG_MODSOLVER_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mba {

/// Multiplicative inverse of the odd \p A modulo 2^w (selected by \p Mask).
/// Asserts that \p A is odd.
uint64_t inverseMod2N(uint64_t A, uint64_t Mask);

/// A dense N x N matrix over Z/2^w, row-major.
struct SquareMatrix {
  unsigned N = 0;
  std::vector<uint64_t> Data; // N * N entries, masked

  uint64_t &at(unsigned Row, unsigned Col) { return Data[Row * N + Col]; }
  uint64_t at(unsigned Row, unsigned Col) const { return Data[Row * N + Col]; }
};

/// Solves A x = b over Z/2^w. Returns std::nullopt when elimination cannot
/// find an odd pivot (the matrix is singular over the ring). \p Mask selects
/// the word width; all arithmetic wraps accordingly.
std::optional<std::vector<uint64_t>>
solveInvertibleMod2N(SquareMatrix A, std::span<const uint64_t> B,
                     uint64_t Mask);

/// Returns true if \p A has odd determinant, i.e. is invertible over Z/2^w
/// for every w. (Determinant parity equals invertibility over GF(2).) Rows
/// are bit-packed into 64-bit words internally, so any N is supported and
/// elimination runs word-at-a-time.
bool isInvertibleMod2(const SquareMatrix &A);

} // namespace mba

#endif // MBA_LINALG_MODSOLVER_H
