//===- linalg/ModSolver.cpp - Linear systems over Z/2^w ---------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/ModSolver.h"

#include <algorithm>
#include <cassert>

using namespace mba;

uint64_t mba::inverseMod2N(uint64_t A, uint64_t Mask) {
  assert((A & 1) && "only odd elements are invertible mod 2^w");
  // Newton-Raphson doubling: X_{k+1} = X_k * (2 - A * X_k); five iterations
  // reach 64 bits of precision starting from the 3-bit-correct seed A.
  uint64_t X = A; // correct mod 2^3 for odd A
  for (int I = 0; I < 5; ++I)
    X = X * (2 - A * X);
  return X & Mask;
}

std::optional<std::vector<uint64_t>>
mba::solveInvertibleMod2N(SquareMatrix A, std::span<const uint64_t> B,
                          uint64_t Mask) {
  unsigned N = A.N;
  assert(B.size() == N && "dimension mismatch");
  std::vector<uint64_t> Rhs(B.begin(), B.end());
  for (auto &V : Rhs)
    V &= Mask;
  for (auto &V : A.Data)
    V &= Mask;

  // Forward elimination with odd-pivot selection.
  for (unsigned Col = 0; Col != N; ++Col) {
    unsigned Pivot = N;
    for (unsigned Row = Col; Row != N; ++Row) {
      if (A.at(Row, Col) & 1) {
        Pivot = Row;
        break;
      }
    }
    if (Pivot == N)
      return std::nullopt; // no odd pivot: singular over Z/2^w
    if (Pivot != Col) {
      for (unsigned K = 0; K != N; ++K)
        std::swap(A.at(Pivot, K), A.at(Col, K));
      std::swap(Rhs[Pivot], Rhs[Col]);
    }
    uint64_t Inv = inverseMod2N(A.at(Col, Col), Mask);
    for (unsigned K = Col; K != N; ++K)
      A.at(Col, K) = (A.at(Col, K) * Inv) & Mask;
    Rhs[Col] = (Rhs[Col] * Inv) & Mask;
    for (unsigned Row = 0; Row != N; ++Row) {
      if (Row == Col)
        continue;
      uint64_t Factor = A.at(Row, Col);
      if (!Factor)
        continue;
      for (unsigned K = Col; K != N; ++K)
        A.at(Row, K) = (A.at(Row, K) - Factor * A.at(Col, K)) & Mask;
      Rhs[Row] = (Rhs[Row] - Factor * Rhs[Col]) & Mask;
    }
  }
  return Rhs;
}

bool mba::isInvertibleMod2(const SquareMatrix &A) {
  // Row-reduce a bit-packed copy over GF(2): each row is Words 64-bit
  // blocks, so the inner elimination XORs whole words instead of walking
  // columns (and N is no longer capped at 64).
  unsigned N = A.N;
  unsigned Words = (N + 63) / 64;
  std::vector<uint64_t> Rows((size_t)N * Words, 0);
  for (unsigned R = 0; R != N; ++R)
    for (unsigned C = 0; C != N; ++C)
      if (A.at(R, C) & 1)
        Rows[(size_t)R * Words + C / 64] |= 1ULL << (C % 64);

  auto Bit = [&](unsigned Row, unsigned Col) {
    return Rows[(size_t)Row * Words + Col / 64] >> (Col % 64) & 1;
  };
  for (unsigned Col = 0; Col != N; ++Col) {
    unsigned Pivot = N;
    for (unsigned Row = Col; Row != N; ++Row) {
      if (Bit(Row, Col)) {
        Pivot = Row;
        break;
      }
    }
    if (Pivot == N)
      return false;
    if (Pivot != Col)
      std::swap_ranges(Rows.begin() + (size_t)Pivot * Words,
                       Rows.begin() + (size_t)(Pivot + 1) * Words,
                       Rows.begin() + (size_t)Col * Words);
    for (unsigned Row = 0; Row != N; ++Row) {
      if (Row == Col || !Bit(Row, Col))
        continue;
      // Elimination only needs to clear columns >= Col, but XORing the
      // full word row is cheaper than masking and keeps the loop branch
      // free.
      for (unsigned W = 0; W != Words; ++W)
        Rows[(size_t)Row * Words + W] ^= Rows[(size_t)Col * Words + W];
    }
  }
  return true;
}
